package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tcr/internal/design"
	"tcr/internal/store"
	"tcr/internal/topo"
)

// The online design loop e2e suite. Design solves run at OnlineK=4 (16
// nodes, 240 flows), where a certified worst-case solve takes well under a
// second, and the sketch defaults (4x256 counters, top-64) hold the whole
// traffic matrix nearly exactly.

// uniformNDJSON is one observe batch covering every non-self pair once.
func uniformNDJSON(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				fmt.Fprintf(&b, `{"src":%d,"dst":%d}`+"\n", i, j)
			}
		}
	}
	return b.String()
}

// concentratedNDJSON is one batch hammering a single pair.
func concentratedNDJSON(src, dst, count, repeat int) string {
	var b strings.Builder
	for i := 0; i < repeat; i++ {
		fmt.Fprintf(&b, `{"src":%d,"dst":%d,"count":%d}`+"\n", src, dst, count)
	}
	return b.String()
}

// postObserve ships one NDJSON batch for a tenant.
func postObserve(t *testing.T, ts *httptest.Server, tenant, body string) (int, http.Header, observeResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/observe", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(tenantHeader, tenant)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var or observeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, &or); err != nil {
			t.Fatalf("undecodable observe response %q: %v", b, err)
		}
	}
	return resp.StatusCode, resp.Header, or
}

// getH is get with response headers.
func getH(t *testing.T, ts *httptest.Server, path string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// waitPublished polls the tenant's status until a design other than notFP
// is published and no re-solve is running.
func waitPublished(t *testing.T, ts *httptest.Server, tenant, notFP string) observeResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		status, _, b := getH(t, ts, "/v1/online/"+tenant)
		if status != http.StatusOK {
			t.Fatalf("status poll: %d %s", status, b)
		}
		var or observeResponse
		if err := json.Unmarshal(b, &or); err != nil {
			t.Fatal(err)
		}
		if or.ServedFP != "" && or.ServedFP != notFP && !or.Resolving {
			return or
		}
		if time.Now().After(deadline) {
			t.Fatalf("no publish past %q: %s", notFP, b)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOnlineDriftRetuneE2E is the online-loop acceptance test: a uniform
// stream bootstraps a first published design, a traffic shift drives the
// drift past the threshold, and the daemon re-solves at the new operating
// point warm-started from the previous solve's final LP state — certifying
// in fewer cutting-plane rounds than the same solve from scratch — while
// requests during the re-solve are served from the prior certified
// artifact with the re-solving disclosure headers.
func TestOnlineDriftRetuneE2E(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, OnlineCooloff: 1})
	var resolves atomic.Int64
	started := make(chan struct{})
	gate := make(chan struct{})
	s.hooks.computeStart = func(kind, _ string) {
		if kind == store.KindDesign && resolves.Add(1) == 2 {
			started <- struct{}{}
			<-gate
		}
	}

	// Uniform traffic, enough mass to pass the MinSamples gate: the
	// bootstrap trip publishes the first design.
	status, _, or := postObserve(t, ts, "default", uniformNDJSON(16))
	if status != http.StatusOK || !or.Trip || !or.Resolving {
		t.Fatalf("bootstrap batch: status %d, trip=%v resolving=%v", status, or.Trip, or.Resolving)
	}
	st1 := waitPublished(t, ts, "default", "")
	fp1, h1 := st1.ServedFP, st1.ServedHNorm

	code, hdr, art1Bytes := getH(t, ts, "/v1/online/default/design")
	if code != http.StatusOK || hdr.Get("X-TCR-Degraded") != "" {
		t.Fatalf("published design: status %d degraded %q", code, hdr.Get("X-TCR-Degraded"))
	}
	var art1 store.DesignArtifact
	if err := json.Unmarshal(art1Bytes, &art1); err != nil {
		t.Fatal(err)
	}
	if !art1.Certified || art1.Request.HNorm != h1 {
		t.Fatalf("first artifact: certified=%v hnorm=%g (served %g)", art1.Certified, art1.Request.HNorm, h1)
	}

	// Two more uniform batches: the first is eaten by the cooloff, the
	// second re-arms the controller (drift vs the re-based reference ~ 0).
	if _, _, or := postObserve(t, ts, "default", uniformNDJSON(16)); or.Trip {
		t.Fatal("cooloff batch tripped")
	}
	if _, _, or := postObserve(t, ts, "default", uniformNDJSON(16)); or.Trip || !or.Armed {
		t.Fatalf("re-arm batch: trip=%v armed=%v", or.Trip, or.Armed)
	}

	// The shift: one pair takes over the traffic. Drift crosses the
	// threshold, the operating point moves up the locality grid, and the
	// re-solve trips.
	_, _, or = postObserve(t, ts, "default", concentratedNDJSON(0, 5, 5, 240))
	if !or.Trip {
		t.Fatalf("shifted batch did not trip (drift %.3f, armed %v)", or.Drift, or.Armed)
	}
	if or.TargetHNorm <= h1 {
		t.Fatalf("concentrated traffic target %g, want above uniform point %g", or.TargetHNorm, h1)
	}

	// While the re-solve runs, the prior certified design serves with the
	// substitution disclosed.
	<-started
	code, hdr, b := getH(t, ts, "/v1/online/default/design")
	if code != http.StatusOK {
		t.Fatalf("mid-resolve design: status %d", code)
	}
	if got := hdr.Get("X-TCR-Degraded"); got != "re-solving" {
		t.Fatalf("mid-resolve X-TCR-Degraded %q, want re-solving", got)
	}
	if hdr.Get("X-TCR-Staleness") == "" || hdr.Get("X-TCR-Fallback-Fingerprint") != fp1 {
		t.Fatalf("mid-resolve disclosure headers: staleness %q fallback-fp %q (want %q)",
			hdr.Get("X-TCR-Staleness"), hdr.Get("X-TCR-Fallback-Fingerprint"), fp1)
	}
	if string(b) != string(art1Bytes) {
		t.Fatal("mid-resolve response is not the prior artifact")
	}
	close(gate)

	// The publish swaps the served design atomically.
	st2 := waitPublished(t, ts, "default", fp1)
	code, hdr, b = getH(t, ts, "/v1/online/default/design")
	if code != http.StatusOK || hdr.Get("X-TCR-Degraded") != "" {
		t.Fatalf("post-publish design: status %d degraded %q", code, hdr.Get("X-TCR-Degraded"))
	}
	var art2 store.DesignArtifact
	if err := json.Unmarshal(b, &art2); err != nil {
		t.Fatal(err)
	}
	if !art2.Certified || art2.Request.HNorm != st2.ServedHNorm || art2.Request.HNorm <= h1 {
		t.Fatalf("second artifact: certified=%v hnorm=%g served=%g h1=%g",
			art2.Certified, art2.Request.HNorm, st2.ServedHNorm, h1)
	}

	// The warm start is the point: the re-solve resumed the previous final
	// basis and cut log, so it must certify in fewer cutting-plane rounds
	// than the identical solve from scratch.
	cold, err := design.WorstCaseAtLocalityCtx(context.Background(), topo.NewTorus(4),
		art2.Request.HNorm, design.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if art2.Rounds >= cold.Rounds {
		t.Fatalf("warm re-solve took %d rounds, cold reference %d — warm start did not help",
			art2.Rounds, cold.Rounds)
	}
	t.Logf("drift retune: hnorm %g -> %g, warm re-solve %d rounds vs cold %d",
		h1, art2.Request.HNorm, art2.Rounds, cold.Rounds)

	_, mb := get(t, ts, "/metrics")
	for _, want := range []string{
		`tcrd_resolves_total{outcome="ok"} 2`,
		`tcrd_resolves_total{outcome="error"} 0`,
		`tcrd_degraded_total{reason="re-solving"} 1`,
		`tcrd_drift{tenant="default"}`,
		"tcrd_observe_samples_total 960\n",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q:\n%s", want, mb)
		}
	}
}

// TestObserveValidation exercises the ingestion guardrails: bad tenants and
// malformed NDJSON are 400s, per-sample rejections are disclosed in a 200.
func TestObserveValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, tc := range map[string]struct {
		tenant, body string
	}{
		"bad tenant":    {"Not_A_Tenant!", `{"src":0,"dst":1}` + "\n"},
		"malformed":     {"default", "{src:0}\n"},
		"unknown field": {"default", `{"src":0,"dst":1,"weight":2}` + "\n"},
		"empty":         {"default", "\n\n"},
	} {
		if status, _, _ := postObserve(t, ts, tc.tenant, tc.body); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}

	// Out-of-range and self-pair samples reject individually, not the batch.
	status, _, or := postObserve(t, ts, "default",
		`{"src":0,"dst":1}`+"\n"+`{"src":99,"dst":1}`+"\n"+`{"src":2,"dst":2}`+"\n")
	if status != http.StatusOK || or.Accepted != 1 || or.Rejected != 2 || or.RejectReason == "" {
		t.Fatalf("mixed batch: status %d accepted %d rejected %d reason %q",
			status, or.Accepted, or.Rejected, or.RejectReason)
	}

	if status, _, _ := getH(t, ts, "/v1/online/Not_A_Tenant!"); status != http.StatusBadRequest {
		t.Errorf("bad tenant status: %d, want 400", status)
	}
	if status, _, _ := getH(t, ts, "/v1/online/nobody/design"); status != http.StatusNotFound {
		t.Errorf("unpublished tenant design: %d, want 404", status)
	}
}

// TestObserveBackpressure fills the solver pool and queue, then requires an
// observe batch to be rejected with 429 + Retry-After: ingestion shares the
// daemon's bounded admission.
func TestObserveBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, OnlineMinSamples: 1e9})
	gate := make(chan struct{})
	admitted := make(chan string, 4)
	s.hooks.computeStart = func(kind, fp string) {
		admitted <- kind + "/" + fp
		<-gate
	}
	results := make(chan int, 2)
	for _, alg := range []string{"DOR", "VAL"} {
		go func(alg string) {
			status, _, _ := post(t, ts, "/v1/eval", fmt.Sprintf(`{"k":4,"alg":%q}`, alg))
			results <- status
		}(alg)
	}
	<-admitted
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached 2 (at %d)", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	status, hdr, _ := postObserve(t, ts, "default", `{"src":0,"dst":1}`+"\n")
	if status != http.StatusTooManyRequests {
		t.Fatalf("observe under overload: status %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Fatalf("gated request finished with %d", status)
		}
	}
	// Pool drained: the same batch lands.
	if status, _, or := postObserve(t, ts, "default", `{"src":0,"dst":1}`+"\n"); status != http.StatusOK || or.Accepted != 1 {
		t.Fatalf("post-drain observe: status %d accepted %d", status, or.Accepted)
	}
}

// TestOnlineRestartResumes kills a daemon (abandoning nothing gracefully
// beyond Close) and requires the successor to resume the estimator and
// controller state bit for bit from the sealed snapshots — and a torn
// snapshot to quarantine rather than crash-loop.
func TestOnlineRestartResumes(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StoreDir: dir, SolveWorkers: 1}

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	// Tenant "stream": below the MinSamples gate, estimator state only.
	for i := 0; i < 3; i++ {
		if status, _, _ := postObserve(t, ts1, "stream", concentratedNDJSON(1, 2+i, 1, 10)); status != http.StatusOK {
			t.Fatalf("stream batch %d: status %d", i, status)
		}
	}
	// Tenant "served": full bootstrap publish, then one batch into the
	// cooloff so the persisted controller state is mid-machine.
	if _, _, or := postObserve(t, ts1, "served", uniformNDJSON(16)); !or.Trip {
		t.Fatal("bootstrap batch did not trip")
	}
	waitPublished(t, ts1, "served", "")
	postObserve(t, ts1, "served", uniformNDJSON(16))

	var before [2][]byte
	for i, tenant := range []string{"stream", "served"} {
		status, _, b := getH(t, ts1, "/v1/online/"+tenant)
		if status != http.StatusOK {
			t.Fatalf("pre-restart status %s: %d", tenant, status)
		}
		before[i] = b
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	for i, tenant := range []string{"stream", "served"} {
		status, _, b := getH(t, ts2, "/v1/online/"+tenant)
		if status != http.StatusOK || string(b) != string(before[i]) {
			t.Fatalf("restarted status %s:\n got %s\nwant %s", tenant, b, before[i])
		}
	}
	// The published design replays from the store, fresh (not degraded).
	if status, hdr, _ := getH(t, ts2, "/v1/online/served/design"); status != http.StatusOK || hdr.Get("X-TCR-Degraded") != "" {
		t.Fatalf("restarted design: status %d degraded %q", status, hdr.Get("X-TCR-Degraded"))
	}
	ts2.Close()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-write tears a snapshot: the next daemon quarantines it
	// and the tenant starts fresh.
	snap := filepath.Join(dir, "online", "stream.json")
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(s3.Handler())
	defer ts3.Close()
	defer s3.Close()
	status, _, b := getH(t, ts3, "/v1/online/stream")
	if status != http.StatusOK {
		t.Fatalf("post-tear status: %d", status)
	}
	var or observeResponse
	if err := json.Unmarshal(b, &or); err != nil {
		t.Fatal(err)
	}
	if or.Ingested != 0 {
		t.Fatalf("torn snapshot restored: ingested %g, want 0", or.Ingested)
	}
	if _, err := os.Stat(snap + ".quarantine"); err != nil {
		t.Fatalf("torn snapshot not quarantined: %v", err)
	}
}
