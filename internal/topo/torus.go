// Package topo models the interconnection-network topologies of the paper:
// k-ary 2-cube (two-dimensional torus) directed graphs, their channels, and
// their symmetry group.
//
// Nodes are identified by integers in [0, N) with N = k*k and coordinates
// (x, y) = (n mod k, n / k). Every node has four outgoing channels, one per
// direction, giving C = 4N unit-bandwidth channels. The torus is both
// vertex- and edge-symmetric; its automorphism group (translations composed
// with the dihedral group of the square) is what Section 4 of the paper
// exploits to shrink the optimization problems from O(C N^2) to O(C N), and
// what this package exposes as explicit coordinate transforms.
package topo

import (
	"fmt"
	"strconv"
)

func init() {
	RegisterFamily("torus2d", func(spec string) (Topology, error) {
		k, err := strconv.Atoi(spec)
		if err != nil || k < 2 {
			return nil, fmt.Errorf("bad radix %q (want an integer >= 2)", spec)
		}
		return NewTorus(k), nil
	})
}

// Node identifies a torus node in [0, N).
type Node int

// Channel identifies a directed channel in [0, C). The channel c belongs to
// source node c/4 and points in direction Dir(c%4).
type Channel int

// Dir is one of the four channel directions of a 2-cube.
type Dir int

const (
	// XPlus increases x by one (mod k).
	XPlus Dir = iota
	// XMinus decreases x by one (mod k).
	XMinus
	// YPlus increases y by one (mod k).
	YPlus
	// YMinus decreases y by one (mod k).
	YMinus
	// NumDirs is the number of channel directions per node.
	NumDirs = 4
)

// String names the direction.
func (d Dir) String() string {
	switch d {
	case XPlus:
		return "+x"
	case XMinus:
		return "-x"
	case YPlus:
		return "+y"
	case YMinus:
		return "-y"
	}
	return fmt.Sprintf("Dir(%d)", int(d))
}

// Delta returns the coordinate step of the direction.
func (d Dir) Delta() (dx, dy int) {
	switch d {
	case XPlus:
		return 1, 0
	case XMinus:
		return -1, 0
	case YPlus:
		return 0, 1
	case YMinus:
		return 0, -1
	}
	//lint:ignore libpanic exhaustive switch over the Dir enum; reachable only via an invalid constant
	panic("topo: invalid direction")
}

// Reverse returns the opposite direction.
func (d Dir) Reverse() Dir {
	switch d {
	case XPlus:
		return XMinus
	case XMinus:
		return XPlus
	case YPlus:
		return YMinus
	case YMinus:
		return YPlus
	}
	//lint:ignore libpanic exhaustive switch over the Dir enum; reachable only via an invalid constant
	panic("topo: invalid direction")
}

// IsX reports whether the direction travels in the x dimension.
func (d Dir) IsX() bool { return d == XPlus || d == XMinus }

// Torus is a k-ary 2-cube with unit-bandwidth channels.
type Torus struct {
	K int // radix per dimension
	N int // number of nodes, k*k
	C int // number of channels, 4*k*k

	// mmd caches MeanMinDist: it sits on the hot path of the
	// locality-normalized Pareto sweeps, so it is computed once here.
	mmd float64
	// grp and tgrp are the full automorphism group and its translation
	// subgroup behind the Topology interface.
	grp  *torusGroup
	tgrp *torusTransGroup
}

// NewTorus constructs a k-ary 2-cube. k must be at least 2 (k = 2 tori have
// coincident +/- neighbors but remain well-defined as multigraphs here).
func NewTorus(k int) *Torus {
	if k < 2 {
		//lint:ignore libpanic construction-time misuse guard; the CLI validates radix before reaching here and library callers pass literals
		panic(fmt.Sprintf("topo: radix %d < 2", k))
	}
	t := &Torus{K: k, N: k * k, C: 4 * k * k}
	var total int
	for r := 0; r < k; r++ {
		total += t.MinDist1D(r)
	}
	// Sum over both dimensions of the per-dimension mean.
	t.mmd = 2 * float64(total) / float64(k)
	t.grp = &torusGroup{t: t}
	t.tgrp = &torusTransGroup{t: t}
	return t
}

// Coord returns the (x, y) coordinates of a node.
func (t *Torus) Coord(n Node) (x, y int) {
	return int(n) % t.K, int(n) / t.K
}

// NodeAt returns the node at coordinates (x, y), reduced modulo k.
func (t *Torus) NodeAt(x, y int) Node {
	x = mod(x, t.K)
	y = mod(y, t.K)
	return Node(y*t.K + x)
}

// Chan returns the channel leaving node n in direction d.
func (t *Torus) Chan(n Node, d Dir) Channel {
	return Channel(int(n)*NumDirs + int(d))
}

// ChanSrc returns the node a channel leaves.
func (t *Torus) ChanSrc(c Channel) Node { return Node(int(c) / NumDirs) }

// ChanDir returns a channel's direction.
func (t *Torus) ChanDir(c Channel) Dir { return Dir(int(c) % NumDirs) }

// ChanDst returns the node a channel enters.
func (t *Torus) ChanDst(c Channel) Node {
	n := t.ChanSrc(c)
	x, y := t.Coord(n)
	dx, dy := t.ChanDir(c).Delta()
	return t.NodeAt(x+dx, y+dy)
}

// Neighbor returns the node reached from n by moving one hop in direction d.
func (t *Torus) Neighbor(n Node, d Dir) Node {
	x, y := t.Coord(n)
	dx, dy := d.Delta()
	return t.NodeAt(x+dx, y+dy)
}

// Rel returns the relative coordinates of d as seen from s, each in [0, k).
func (t *Torus) Rel(s, d Node) (rx, ry int) {
	sx, sy := t.Coord(s)
	dx, dy := t.Coord(d)
	return mod(dx-sx, t.K), mod(dy-sy, t.K)
}

// MinDist1D returns the minimal ring distance for a relative offset r
// in [0, k).
func (t *Torus) MinDist1D(r int) int {
	r = mod(r, t.K)
	if r > t.K-r {
		return t.K - r
	}
	return r
}

// MinDist returns the minimal hop count between two nodes.
func (t *Torus) MinDist(s, d Node) int {
	rx, ry := t.Rel(s, d)
	return t.MinDist1D(rx) + t.MinDist1D(ry)
}

// MeanMinDist returns the average minimal path length over all N^2
// source-destination pairs (self pairs contribute zero), the quantity used
// to normalize H_avg in the paper's figures. It is computed once at
// construction.
func (t *Torus) MeanMinDist() float64 { return t.mmd }

// Topology interface. The port index of a torus channel is its Dir.

// Family returns "torus2d".
func (t *Torus) Family() string { return "torus2d" }

// Spec returns the radix as a string.
func (t *Torus) Spec() string { return fmt.Sprintf("%d", t.K) }

// Nodes returns the node count N.
func (t *Torus) Nodes() int { return t.N }

// Chans returns the channel count C.
func (t *Torus) Chans() int { return t.C }

// MaxDeg returns the uniform out-degree, 4.
func (t *Torus) MaxDeg() int { return NumDirs }

// OutDeg returns the out-degree of a node, 4.
func (t *Torus) OutDeg(Node) int { return NumDirs }

// PortChan returns the channel leaving n through port p; torus ports are
// the Dir constants.
func (t *Torus) PortChan(n Node, p int) Channel { return t.Chan(n, Dir(p)) }

// ChanPort returns a channel's port index at its source.
func (t *Torus) ChanPort(c Channel) int { return int(t.ChanDir(c)) }

// ReverseChan returns the oppositely directed channel of the same link.
func (t *Torus) ReverseChan(c Channel) Channel {
	return t.Chan(t.ChanDst(c), t.ChanDir(c).Reverse())
}

// VertexTransitive reports that the torus is vertex-transitive.
func (t *Torus) VertexTransitive() bool { return true }

// RelNode returns the node at the relative offset of d as seen from s.
func (t *Torus) RelNode(s, d Node) Node {
	rx, ry := t.Rel(s, d)
	return Node(ry*t.K + rx)
}

// Group returns the full automorphism group (translations composed with the
// dihedral group of the square), whose pair classes are the octant
// commodities of Section 4.
func (t *Torus) Group() AutGroup { return t.grp }

// TransGroup returns the translation subgroup, whose pair classes are the
// N-1 relative destinations and whose channel-orbit representatives are the
// four channels at the origin.
func (t *Torus) TransGroup() AutGroup { return t.tgrp }

// mod is the arithmetic (always nonnegative) remainder.
func mod(a, k int) int {
	a %= k
	if a < 0 {
		a += k
	}
	return a
}
