package topo

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Mesh is a W x H two-dimensional mesh: the torus without wraparound.
// Nodes sit at (x, y) = (n mod W, n / W); channels connect orthogonal
// neighbors only, so border nodes have fewer ports than interior nodes and
// channel ids are compacted per node (ChanPort indexes the node's own port
// list, not a global direction table).
//
// The mesh is neither vertex- nor edge-transitive. Its automorphism group is
// the dihedral subgroup fixing the bounding box — all 8 square symmetries
// when W == H, the 4 axis reflections otherwise — acting about the mesh
// center (a reflection maps x to W-1-x rather than -x). The pair classes and
// channel orbits come from the generic exhaustive fold, and the translation
// subgroup is trivial: the folded LPs keep one commodity per ordered pair
// and the separation oracle walks every channel.
type Mesh struct {
	W, H int // dimensions, each >= 2
	N    int // number of nodes, W*H
	C    int // number of channels

	mmd float64

	// chanStart[n] is the first channel id of node n; chanStart[N] == C.
	chanStart []int
	// dirAt[c] is the direction of channel c; portOf[n*4+int(d)] is node n's
	// compact port index for direction d, or -1 when the border cuts it off.
	dirAt  []Dir
	portOf []int
	revOf  []Channel

	grp  *meshGroup
	tgrp *trivialGroup
}

func init() {
	RegisterFamily("mesh", func(spec string) (Topology, error) {
		ws, hs, ok := strings.Cut(spec, "x")
		if !ok {
			return nil, fmt.Errorf("bad dimensions %q (want WxH, e.g. %q)", spec, "8x8")
		}
		w, errW := strconv.Atoi(ws)
		h, errH := strconv.Atoi(hs)
		if errW != nil || errH != nil || w < 2 || h < 2 {
			return nil, fmt.Errorf("bad dimensions %q (want integers >= 2)", spec)
		}
		return NewMesh(w, h), nil
	})
}

// NewMesh constructs a W x H mesh; both dimensions must be at least 2.
func NewMesh(w, h int) *Mesh {
	if w < 2 || h < 2 {
		//lint:ignore libpanic construction-time misuse guard; Parse validates dimensions before reaching here
		panic(fmt.Sprintf("topo: mesh dimensions %dx%d < 2x2", w, h))
	}
	t := &Mesh{W: w, H: h, N: w * h}
	t.chanStart = make([]int, t.N+1)
	t.portOf = make([]int, t.N*NumDirs)
	for n := 0; n < t.N; n++ {
		t.chanStart[n] = len(t.dirAt)
		x, y := t.Coord(Node(n))
		for d := Dir(0); d < NumDirs; d++ {
			t.portOf[n*NumDirs+int(d)] = -1
			if t.inBounds(x, y, d) {
				t.portOf[n*NumDirs+int(d)] = len(t.dirAt) - t.chanStart[n]
				t.dirAt = append(t.dirAt, d)
			}
		}
	}
	t.C = len(t.dirAt)
	t.chanStart[t.N] = t.C
	t.revOf = make([]Channel, t.C)
	for c := 0; c < t.C; c++ {
		dst := t.ChanDst(Channel(c))
		t.revOf[c] = t.dirChan(dst, t.dirAt[c].Reverse())
	}
	// Mean minimal distance: E|x1-x2| + E|y1-y2| over independent uniform
	// coordinates.
	var sx, sy int
	for a := 0; a < w; a++ {
		for b := 0; b < w; b++ {
			sx += abs(a - b)
		}
	}
	for a := 0; a < h; a++ {
		for b := 0; b < h; b++ {
			sy += abs(a - b)
		}
	}
	t.mmd = float64(sx)/float64(w*w) + float64(sy)/float64(h*h)
	t.grp = &meshGroup{t: t}
	t.tgrp = &trivialGroup{t: t}
	return t
}

// inBounds reports whether moving from (x, y) in direction d stays on the
// mesh.
func (t *Mesh) inBounds(x, y int, d Dir) bool {
	dx, dy := d.Delta()
	nx, ny := x+dx, y+dy
	return nx >= 0 && nx < t.W && ny >= 0 && ny < t.H
}

// Coord returns the (x, y) coordinates of a node.
func (t *Mesh) Coord(n Node) (x, y int) { return int(n) % t.W, int(n) / t.W }

// NodeXY returns the node at coordinates (x, y); no reduction, coordinates
// must be on the mesh.
func (t *Mesh) NodeXY(x, y int) Node { return Node(y*t.W + x) }

// dirChan returns the channel leaving n in direction d; d must be in bounds.
func (t *Mesh) dirChan(n Node, d Dir) Channel {
	p := t.portOf[int(n)*NumDirs+int(d)]
	if p < 0 {
		//lint:ignore libpanic caller invariant: direction exits the mesh
		panic("topo: mesh channel off the edge")
	}
	return Channel(t.chanStart[n] + p)
}

// ChanDir returns a mesh channel's direction (exported for loadmap-style
// renderers that want geometric orientation rather than a port index).
func (t *Mesh) ChanDir(c Channel) Dir { return t.dirAt[c] }

// Topology interface.

func (t *Mesh) Family() string { return "mesh" }
func (t *Mesh) Spec() string   { return fmt.Sprintf("%dx%d", t.W, t.H) }
func (t *Mesh) Nodes() int     { return t.N }
func (t *Mesh) Chans() int     { return t.C }
func (t *Mesh) MaxDeg() int    { return NumDirs }

func (t *Mesh) OutDeg(n Node) int { return t.chanStart[n+1] - t.chanStart[n] }

func (t *Mesh) PortChan(n Node, p int) Channel { return Channel(t.chanStart[n] + p) }

func (t *Mesh) ChanPort(c Channel) int { return int(c) - t.chanStart[t.ChanSrc(c)] }

// ChanSrc finds the owning node by binary search over the channel-start
// table.
func (t *Mesh) ChanSrc(c Channel) Node {
	lo, hi := 0, t.N-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if t.chanStart[mid] <= int(c) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return Node(lo)
}

func (t *Mesh) ChanDst(c Channel) Node {
	x, y := t.Coord(t.ChanSrc(c))
	dx, dy := t.dirAt[c].Delta()
	return t.NodeXY(x+dx, y+dy)
}

func (t *Mesh) ReverseChan(c Channel) Channel { return t.revOf[c] }

func (t *Mesh) MinDist(s, d Node) int {
	sx, sy := t.Coord(s)
	dx, dy := t.Coord(d)
	return abs(dx-sx) + abs(dy-sy)
}

func (t *Mesh) MeanMinDist() float64 { return t.mmd }

func (t *Mesh) VertexTransitive() bool { return false }

func (t *Mesh) RelNode(s, d Node) Node {
	//lint:ignore libpanic interface contract: RelNode is valid only for vertex-transitive families, and callers gate on VertexTransitive()
	panic("topo: mesh is not vertex-transitive")
}

func (t *Mesh) Group() AutGroup      { return t.grp }
func (t *Mesh) TransGroup() AutGroup { return t.tgrp }

// meshGroup is the dihedral symmetry group of the bounding box, acting about
// the mesh center: all 8 square symmetries when W == H, otherwise the 4
// elements without an axis swap. AutID indexes the element list.
type meshGroup struct {
	t   *Mesh
	els []Dihedral

	once      sync.Once
	classes   []PairClass
	pairClass []int
	pairAut   []AutID
	chanReps  []Channel
}

// elements returns the dihedral elements that fix the bounding box.
func (g *meshGroup) elements() []Dihedral {
	if g.els == nil {
		if g.t.W == g.t.H {
			g.els = []Dihedral{DihId, DihSwap, DihNegX, DihNegY, DihNegXY, DihSwapNegX, DihSwapNegY, DihSwapNegXY}
		} else {
			g.els = []Dihedral{DihId, DihNegX, DihNegY, DihNegXY}
		}
	}
	return g.els
}

// applyCoord maps mesh coordinates through a dihedral element: the linear
// action with every negated output coordinate shifted back onto the grid
// (-x becomes W-1-x), i.e. reflection about the mesh center.
func (g *meshGroup) applyCoord(m Dihedral, x, y int) (int, int) {
	nx, ny := m.Apply(x, y)
	// Probe the coefficient signs on (1, 1) to detect negated outputs even
	// when the coordinate itself is 0.
	px, py := m.Apply(1, 1)
	// An axis swap exchanges the extents of the two outputs; swaps are only
	// admitted when W == H, so using W for x-extent and H for y-extent after
	// the swap check is exact.
	if px < 0 {
		nx += g.t.W - 1
	}
	if py < 0 {
		ny += g.t.H - 1
	}
	return nx, ny
}

func (g *meshGroup) Size() int       { return len(g.elements()) }
func (g *meshGroup) Identity() AutID { return 0 }

func (g *meshGroup) Elements() []AutID {
	els := make([]AutID, g.Size())
	for i := range els {
		els[i] = AutID(i)
	}
	return els
}

func (g *meshGroup) ApplyNode(a AutID, n Node) Node {
	x, y := g.t.Coord(n)
	nx, ny := g.applyCoord(g.elements()[a], x, y)
	return g.t.NodeXY(nx, ny)
}

func (g *meshGroup) ApplyChan(a AutID, c Channel) Channel {
	m := g.elements()[a]
	src := g.ApplyNode(a, g.t.ChanSrc(c))
	return g.t.dirChan(src, m.ApplyDir(g.t.dirAt[c]))
}

func (g *meshGroup) Compose(a, b AutID) AutID {
	m := g.elements()[a].Compose(g.elements()[b])
	for i, e := range g.elements() {
		if e == m {
			return AutID(i)
		}
	}
	//lint:ignore libpanic group invariant: the box-fixing dihedral subgroup is closed (covered by the conformance suite)
	panic("topo: mesh symmetry composition not closed")
}

func (g *meshGroup) Inverse(a AutID) AutID {
	m := g.elements()[a].Inverse()
	for i, e := range g.elements() {
		if e == m {
			return AutID(i)
		}
	}
	//lint:ignore libpanic group invariant: every box-fixing dihedral element has an inverse (covered by the conformance suite)
	panic("topo: mesh symmetry has no inverse")
}

// fold runs the generic exhaustive pair fold once.
func (g *meshGroup) fold() {
	g.once.Do(func() {
		g.classes, g.pairClass, g.pairAut = genPairClasses(g.t, g)
		g.chanReps = genChanOrbitReps(g.t, g)
	})
}

func (g *meshGroup) PairAut(s, d Node) (int, AutID) {
	if s == d {
		return -1, 0
	}
	g.fold()
	idx := int(s)*g.t.N + int(d)
	return g.pairClass[idx], g.pairAut[idx]
}

func (g *meshGroup) Classes() []PairClass {
	g.fold()
	return g.classes
}

func (g *meshGroup) ChanOrbitReps() []Channel {
	g.fold()
	return g.chanReps
}

// trivialGroup is the identity-only group, the translation "subgroup" of a
// family that is not vertex-transitive. Folding with it is a no-op: one
// class per ordered pair (source-major), one channel orbit per channel.
type trivialGroup struct {
	t Topology

	once    sync.Once
	classes []PairClass
}

func (g *trivialGroup) Size() int                            { return 1 }
func (g *trivialGroup) Identity() AutID                      { return 0 }
func (g *trivialGroup) Elements() []AutID                    { return []AutID{0} }
func (g *trivialGroup) ApplyNode(_ AutID, n Node) Node       { return n }
func (g *trivialGroup) ApplyChan(_ AutID, c Channel) Channel { return c }
func (g *trivialGroup) Compose(_, _ AutID) AutID             { return 0 }
func (g *trivialGroup) Inverse(_ AutID) AutID                { return 0 }

func (g *trivialGroup) PairAut(s, d Node) (int, AutID) {
	if s == d {
		return -1, 0
	}
	ci := int(s)*(g.t.Nodes()-1) + int(d)
	if d > s {
		ci--
	}
	return ci, 0
}

func (g *trivialGroup) Classes() []PairClass {
	g.once.Do(func() {
		n := g.t.Nodes()
		g.classes = make([]PairClass, 0, n*n-n)
		w := 1 / float64(n)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				g.classes = append(g.classes, PairClass{
					Src:     Node(s),
					Dst:     Node(d),
					Weight:  w,
					MinDist: g.t.MinDist(Node(s), Node(d)),
				})
			}
		}
	})
	return g.classes
}

func (g *trivialGroup) ChanOrbitReps() []Channel {
	reps := make([]Channel, g.t.Chans())
	for c := range reps {
		reps[c] = Channel(c)
	}
	return reps
}

// abs is the integer absolute value.
func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
