package topo

import "sync"

// This file adapts the torus's concrete automorphism machinery (symmetry.go)
// to the AutGroup interface. The adapters are deliberately thin: PairAut,
// the octant classes, and the channel action all delegate to the legacy
// CanonicalRel/OctantDests/ApplyChan code paths, so the folded LPs built
// through the interface are bit-for-bit identical to the ones the concrete
// API produced — same commodity enumeration order, same automorphism per
// pair, same separation work list.

// torusGroup is the full automorphism group of a k-ary 2-cube: 8 dihedral
// elements composed with N translations, |G| = 8N. Element encoding:
// id = m*N + nodeAt(tx, ty).
type torusGroup struct {
	t *Torus

	once     sync.Once
	classes  []PairClass
	classOf  map[RelDest]int
	chanReps []Channel
}

// encodeAut packs a concrete Aut into an AutID.
func (g *torusGroup) encodeAut(a Aut) AutID {
	return AutID(int(a.M)*g.t.N + int(g.t.NodeAt(a.Tx, a.Ty)))
}

// decodeAut unpacks an AutID.
func (g *torusGroup) decodeAut(id AutID) Aut {
	tx, ty := g.t.Coord(Node(int(id) % g.t.N))
	return Aut{M: Dihedral(int(id) / g.t.N), Tx: tx, Ty: ty}
}

func (g *torusGroup) Size() int       { return NumDihedral * g.t.N }
func (g *torusGroup) Identity() AutID { return 0 }
func (g *torusGroup) Elements() []AutID {
	els := make([]AutID, g.Size())
	for i := range els {
		els[i] = AutID(i)
	}
	return els
}

func (g *torusGroup) ApplyNode(a AutID, n Node) Node {
	return g.t.ApplyNode(g.decodeAut(a), n)
}

func (g *torusGroup) ApplyChan(a AutID, c Channel) Channel {
	return g.t.ApplyChan(g.decodeAut(a), c)
}

func (g *torusGroup) Compose(a, b AutID) AutID {
	// sigma_b(sigma_a(v)) = B(A(v) + s) + t = (B.A)(v) + B(s) + t.
	aa, bb := g.decodeAut(a), g.decodeAut(b)
	sx, sy := bb.M.Apply(aa.Tx, aa.Ty)
	return g.encodeAut(Aut{M: aa.M.Compose(bb.M), Tx: sx + bb.Tx, Ty: sy + bb.Ty})
}

func (g *torusGroup) Inverse(a AutID) AutID {
	// sigma^-1(v) = A^-1(v - s) = A^-1(v) - A^-1(s).
	aa := g.decodeAut(a)
	inv := aa.M.Inverse()
	sx, sy := inv.Apply(aa.Tx, aa.Ty)
	return g.encodeAut(Aut{M: inv, Tx: -sx, Ty: -sy})
}

// fold computes the octant classes lazily, in the legacy OctantDests
// enumeration order (x outer from 0 to k/2, y inner from 0 to x), and the
// channel-orbit representatives (a single orbit: the torus is
// edge-transitive under the full group).
func (g *torusGroup) fold() {
	g.once.Do(func() {
		dests := g.t.OctantDests()
		g.classes = make([]PairClass, len(dests))
		g.classOf = make(map[RelDest]int, len(dests))
		for i, od := range dests {
			g.classes[i] = PairClass{
				Src:     0,
				Dst:     g.t.NodeAt(od.Rel.X, od.Rel.Y),
				Weight:  float64(od.Orbit),
				MinDist: od.MinDist,
			}
			g.classOf[od.Rel] = i
		}
		g.chanReps = genChanOrbitReps(g.t, g)
	})
}

func (g *torusGroup) PairAut(s, d Node) (int, AutID) {
	if s == d {
		return -1, g.Identity()
	}
	g.fold()
	a, rel := g.t.PairAut(s, d)
	return g.classOf[rel], g.encodeAut(a)
}

func (g *torusGroup) Classes() []PairClass {
	g.fold()
	return g.classes
}

func (g *torusGroup) ChanOrbitReps() []Channel {
	g.fold()
	return g.chanReps
}

// torusTransGroup is the translation subgroup: |G| = N, element encoding
// id = nodeAt(tx, ty).
type torusTransGroup struct {
	t *Torus

	once    sync.Once
	classes []PairClass
}

func (g *torusTransGroup) Size() int       { return g.t.N }
func (g *torusTransGroup) Identity() AutID { return 0 }
func (g *torusTransGroup) Elements() []AutID {
	els := make([]AutID, g.t.N)
	for i := range els {
		els[i] = AutID(i)
	}
	return els
}

func (g *torusTransGroup) aut(id AutID) Aut {
	tx, ty := g.t.Coord(Node(id))
	return Aut{M: DihId, Tx: tx, Ty: ty}
}

func (g *torusTransGroup) ApplyNode(a AutID, n Node) Node {
	return g.t.ApplyNode(g.aut(a), n)
}

func (g *torusTransGroup) ApplyChan(a AutID, c Channel) Channel {
	return g.t.ApplyChan(g.aut(a), c)
}

func (g *torusTransGroup) Compose(a, b AutID) AutID {
	ax, ay := g.t.Coord(Node(a))
	bx, by := g.t.Coord(Node(b))
	return AutID(g.t.NodeAt(ax+bx, ay+by))
}

func (g *torusTransGroup) Inverse(a AutID) AutID {
	ax, ay := g.t.Coord(Node(a))
	return AutID(g.t.NodeAt(-ax, -ay))
}

// PairAut maps (s, d) to the pair (0, rel) by the translation -s; the class
// index is rel-1 (classes are the relative destinations 1..N-1 in node
// order, matching the legacy translation fold).
func (g *torusTransGroup) PairAut(s, d Node) (int, AutID) {
	if s == d {
		return -1, 0
	}
	sx, sy := g.t.Coord(s)
	return int(g.t.RelNode(s, d)) - 1, AutID(g.t.NodeAt(-sx, -sy))
}

func (g *torusTransGroup) Classes() []PairClass {
	g.once.Do(func() {
		g.classes = make([]PairClass, g.t.N-1)
		for rel := 1; rel < g.t.N; rel++ {
			g.classes[rel-1] = PairClass{
				Src:     0,
				Dst:     Node(rel),
				Weight:  1,
				MinDist: g.t.MinDist(0, Node(rel)),
			}
		}
	})
	return g.classes
}

// ChanOrbitReps returns the four channels at the origin, one per direction,
// in Dir order — the legacy separation work list.
func (g *torusTransGroup) ChanOrbitReps() []Channel {
	reps := make([]Channel, NumDirs)
	for d := 0; d < NumDirs; d++ {
		reps[d] = g.t.PortChan(0, d)
	}
	return reps
}
