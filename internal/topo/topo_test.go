package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoordRoundTrip(t *testing.T) {
	tor := NewTorus(5)
	for n := Node(0); n < Node(tor.N); n++ {
		x, y := tor.Coord(n)
		if tor.NodeAt(x, y) != n {
			t.Fatalf("node %d -> (%d,%d) -> %d", n, x, y, tor.NodeAt(x, y))
		}
	}
}

func TestNeighborWraps(t *testing.T) {
	tor := NewTorus(4)
	n := tor.NodeAt(3, 0)
	if got := tor.Neighbor(n, XPlus); got != tor.NodeAt(0, 0) {
		t.Fatalf("wrap +x: got %d", got)
	}
	if got := tor.Neighbor(tor.NodeAt(0, 0), YMinus); got != tor.NodeAt(0, 3) {
		t.Fatalf("wrap -y: got %d", got)
	}
}

func TestChannelEncoding(t *testing.T) {
	tor := NewTorus(6)
	for n := Node(0); n < Node(tor.N); n++ {
		for d := Dir(0); d < NumDirs; d++ {
			c := tor.Chan(n, d)
			if tor.ChanSrc(c) != n || tor.ChanDir(c) != d {
				t.Fatalf("channel encode/decode mismatch at %d/%v", n, d)
			}
			if tor.ChanDst(c) != tor.Neighbor(n, d) {
				t.Fatalf("channel dst mismatch at %d/%v", n, d)
			}
		}
	}
}

func TestMinDist(t *testing.T) {
	tor := NewTorus(8)
	cases := []struct {
		sx, sy, dx, dy, want int
	}{
		{0, 0, 0, 0, 0},
		{0, 0, 1, 0, 1},
		{0, 0, 7, 0, 1},
		{0, 0, 4, 0, 4},
		{0, 0, 4, 4, 8},
		{2, 3, 7, 1, 5}, // dx: 2->7 is 3 backwards; dy: 3->1 is 2
	}
	for _, c := range cases {
		got := tor.MinDist(tor.NodeAt(c.sx, c.sy), tor.NodeAt(c.dx, c.dy))
		if got != c.want {
			t.Errorf("MinDist (%d,%d)->(%d,%d) = %d, want %d", c.sx, c.sy, c.dx, c.dy, got, c.want)
		}
	}
}

func TestMeanMinDist(t *testing.T) {
	// k=8: per-dimension mean over offsets {0,1,2,3,4,3,2,1} = 2; two dims = 4.
	if got := NewTorus(8).MeanMinDist(); got != 4 {
		t.Fatalf("k=8 mean = %v, want 4", got)
	}
	// k=5: per-dim {0,1,2,2,1} mean = 6/5; total 12/5.
	if got := NewTorus(5).MeanMinDist(); got != 2.4 {
		t.Fatalf("k=5 mean = %v, want 2.4", got)
	}
}

func TestDihedralGroupAxioms(t *testing.T) {
	// Closure, identity, inverses verified by the helpers themselves; check
	// that the 8 elements act distinctly and bijectively on a test vector.
	seen := map[[2]int]bool{}
	for m := Dihedral(0); m < NumDihedral; m++ {
		x, y := m.Apply(2, 1)
		key := [2]int{x, y}
		if seen[key] {
			t.Fatalf("elements collide on (2,1): %v", key)
		}
		seen[key] = true
		if inv := m.Inverse(); m.Compose(inv) != DihId {
			t.Fatalf("inverse of %d broken", m)
		}
	}
}

func TestDihedralDirAction(t *testing.T) {
	if DihSwap.ApplyDir(XPlus) != YPlus {
		t.Error("swap should map +x to +y")
	}
	if DihNegX.ApplyDir(XPlus) != XMinus {
		t.Error("negx should map +x to -x")
	}
	if DihNegX.ApplyDir(YPlus) != YPlus {
		t.Error("negx should fix +y")
	}
}

func TestAutomorphismPreservesAdjacency(t *testing.T) {
	tor := NewTorus(6)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := Aut{M: Dihedral(rng.Intn(NumDihedral)), Tx: rng.Intn(6), Ty: rng.Intn(6)}
		n := Node(rng.Intn(tor.N))
		d := Dir(rng.Intn(NumDirs))
		// sigma(neighbor(n, d)) == neighbor(sigma(n), M(d))
		lhs := tor.ApplyNode(a, tor.Neighbor(n, d))
		rhs := tor.Neighbor(tor.ApplyNode(a, n), a.M.ApplyDir(d))
		if lhs != rhs {
			t.Fatalf("automorphism %+v breaks adjacency at node %d dir %v", a, n, d)
		}
	}
}

func TestApplyChanConsistent(t *testing.T) {
	tor := NewTorus(5)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		a := Aut{M: Dihedral(rng.Intn(NumDihedral)), Tx: rng.Intn(5), Ty: rng.Intn(5)}
		c := Channel(rng.Intn(tor.C))
		img := tor.ApplyChan(a, c)
		if tor.ChanSrc(img) != tor.ApplyNode(a, tor.ChanSrc(c)) {
			t.Fatal("channel image source mismatch")
		}
		if tor.ChanDst(img) != tor.ApplyNode(a, tor.ChanDst(c)) {
			t.Fatal("channel image destination mismatch")
		}
	}
}

func TestPairAutCanonicalizes(t *testing.T) {
	for _, k := range []int{4, 5, 8} {
		tor := NewTorus(k)
		half := k / 2
		for s := Node(0); s < Node(tor.N); s++ {
			for d := Node(0); d < Node(tor.N); d++ {
				a, rel := tor.PairAut(s, d)
				if tor.ApplyNode(a, s) != 0 {
					t.Fatalf("k=%d: sigma(s) != 0 for pair (%d,%d)", k, s, d)
				}
				if got := tor.ApplyNode(a, d); got != tor.NodeAt(rel.X, rel.Y) {
					t.Fatalf("k=%d: sigma(d) = %d, want rel (%d,%d)", k, got, rel.X, rel.Y)
				}
				if !(0 <= rel.Y && rel.Y <= rel.X && rel.X <= half) {
					t.Fatalf("k=%d: rel (%d,%d) outside octant", k, rel.X, rel.Y)
				}
				// Distance is an automorphism invariant.
				if tor.MinDist(s, d) != tor.MinDist(0, tor.NodeAt(rel.X, rel.Y)) {
					t.Fatalf("k=%d: automorphism changed distance for (%d,%d)", k, s, d)
				}
			}
		}
	}
}

func TestOctantDestsOrbitsSumToN1(t *testing.T) {
	for _, k := range []int{3, 4, 5, 6, 8, 9} {
		tor := NewTorus(k)
		var sum int
		for _, od := range tor.OctantDests() {
			sum += od.Orbit
		}
		if sum != tor.N-1 {
			t.Fatalf("k=%d: orbit weights sum to %d, want %d", k, sum, tor.N-1)
		}
	}
}

func TestOctantDestsK8(t *testing.T) {
	tor := NewTorus(8)
	dests := tor.OctantDests()
	// Octant for k=8: x in 1..4, y in 0..x -> 2+3+4+5 = 14 commodities.
	if len(dests) != 14 {
		t.Fatalf("k=8 octant has %d dests, want 14", len(dests))
	}
	// Weighted mean minimal distance over the octant must match the global
	// mean (including the zero self-distance) times N/(N-1)... i.e. the
	// total over pairs matches.
	var tot float64
	for _, od := range dests {
		tot += float64(od.Orbit * od.MinDist)
	}
	if want := tor.MeanMinDist() * float64(tor.N); tot != want {
		t.Fatalf("octant total distance %v, want %v", tot, want)
	}
}

func TestCanonicalRelQuick(t *testing.T) {
	tor := NewTorus(7)
	prop := func(rx, ry int) bool {
		m, cx, cy := tor.CanonicalRel(rx, ry)
		// The dihedral element must actually map (rx,ry) to (cx,cy) mod k.
		ax, ay := m.Apply(mod(rx, 7), mod(ry, 7))
		return mod(ax, 7) == cx && mod(ay, 7) == cy && cy <= cx && cx <= 3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAllAutsSize(t *testing.T) {
	tor := NewTorus(4)
	if got := len(tor.AllAuts()); got != 8*16 {
		t.Fatalf("|Aut| = %d, want 128", got)
	}
}
