package topo

import (
	"math"
	"testing"
)

// The conformance suite checks every registered family against the Topology
// and AutGroup contracts: channel indexing round-trips, reverse channels,
// group axioms (identity, inverse, composition semantics, closure), the
// action's structure preservation (adjacency, ports within nodes), and the
// pair-folding invariants (PairAut maps onto the class representative,
// orbit weights sum to N-1, distances are class invariants).

// conformanceInstances lists small instances of every registered family.
func conformanceInstances(t *testing.T) []Topology {
	specs := []string{"torus2d:4", "torus2d:5", "torus3d:3", "torus3d:4", "mesh:4x4", "mesh:3x5"}
	insts := make([]Topology, 0, len(specs))
	for _, s := range specs {
		tp, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		insts = append(insts, tp)
	}
	// Every registered family must appear, so a new family cannot dodge the
	// suite.
	covered := map[string]bool{}
	for _, tp := range insts {
		covered[tp.Family()] = true
	}
	for _, fam := range Families() {
		if !covered[fam] {
			t.Fatalf("family %q registered but not covered by the conformance suite", fam)
		}
	}
	return insts
}

func TestTopologyConformance(t *testing.T) {
	for _, tp := range conformanceInstances(t) {
		tp := tp
		t.Run(String(tp), func(t *testing.T) {
			checkTopology(t, tp)
			t.Run("Group", func(t *testing.T) { checkGroup(t, tp, tp.Group()) })
			t.Run("TransGroup", func(t *testing.T) { checkGroup(t, tp, tp.TransGroup()) })
		})
	}
}

func checkTopology(t *testing.T, tp Topology) {
	t.Helper()
	n, c := tp.Nodes(), tp.Chans()
	if n < 2 || c < 1 {
		t.Fatalf("degenerate topology: N=%d C=%d", n, c)
	}
	// Port indexing bijects with channels.
	seen := make([]bool, c)
	total := 0
	for nd := 0; nd < n; nd++ {
		deg := tp.OutDeg(Node(nd))
		if deg < 1 || deg > tp.MaxDeg() {
			t.Fatalf("node %d: OutDeg %d outside [1, MaxDeg=%d]", nd, deg, tp.MaxDeg())
		}
		total += deg
		for p := 0; p < deg; p++ {
			ch := tp.PortChan(Node(nd), p)
			if ch < 0 || int(ch) >= c {
				t.Fatalf("PortChan(%d, %d) = %d out of range", nd, p, ch)
			}
			if seen[ch] {
				t.Fatalf("channel %d produced by two ports", ch)
			}
			seen[ch] = true
			if got := tp.ChanSrc(ch); got != Node(nd) {
				t.Fatalf("ChanSrc(%d) = %d, want %d", ch, got, nd)
			}
			if got := tp.ChanPort(ch); got != p {
				t.Fatalf("ChanPort(%d) = %d, want %d", ch, got, p)
			}
		}
	}
	if total != c {
		t.Fatalf("sum of out-degrees %d != Chans %d", total, c)
	}
	// Reverse channels are proper involutions on the opposite link.
	for ch := 0; ch < c; ch++ {
		r := tp.ReverseChan(Channel(ch))
		if tp.ChanSrc(r) != tp.ChanDst(Channel(ch)) || tp.ChanDst(r) != tp.ChanSrc(Channel(ch)) {
			t.Fatalf("ReverseChan(%d) = %d does not flip endpoints", ch, r)
		}
		if tp.ReverseChan(r) != Channel(ch) {
			t.Fatalf("ReverseChan is not an involution at %d", ch)
		}
	}
	// MinDist is a metric consistent with the channel graph: zero on self,
	// one across a channel, and triangle-bounded along any channel.
	for nd := 0; nd < n; nd++ {
		if d := tp.MinDist(Node(nd), Node(nd)); d != 0 {
			t.Fatalf("MinDist(%d, %d) = %d, want 0", nd, nd, d)
		}
	}
	for ch := 0; ch < c; ch++ {
		s, d := tp.ChanSrc(Channel(ch)), tp.ChanDst(Channel(ch))
		if got := tp.MinDist(s, d); got > 1 {
			t.Fatalf("MinDist across channel %d = %d, want <= 1", ch, got)
		}
	}
	// MeanMinDist matches the exhaustive average.
	var sum float64
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			sum += float64(tp.MinDist(Node(s), Node(d)))
		}
	}
	if want := sum / float64(n*n); math.Abs(tp.MeanMinDist()-want) > 1e-12 {
		t.Fatalf("MeanMinDist = %v, want %v", tp.MeanMinDist(), want)
	}
	// RelNode on vertex-transitive families: offset arithmetic from source 0.
	if tp.VertexTransitive() {
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				rel := tp.RelNode(Node(s), Node(d))
				if (rel == 0) != (s == d) {
					t.Fatalf("RelNode(%d, %d) = %d: zero iff self violated", s, d, rel)
				}
				if got := tp.MinDist(0, rel); got != tp.MinDist(Node(s), Node(d)) {
					t.Fatalf("RelNode(%d, %d) = %d changes distance: %d != %d",
						s, d, rel, got, tp.MinDist(Node(s), Node(d)))
				}
			}
		}
	}
	// Parse round-trip.
	rt, err := Parse(String(tp))
	if err != nil {
		t.Fatalf("Parse(String) failed: %v", err)
	}
	if String(rt) != String(tp) || rt.Nodes() != n || rt.Chans() != c {
		t.Fatalf("Parse(String) round-trip mismatch: %s vs %s", String(rt), String(tp))
	}
}

// checkGroup asserts the group axioms and the folding invariants for one
// AutGroup of a topology.
func checkGroup(t *testing.T, tp Topology, g AutGroup) {
	t.Helper()
	n, c := tp.Nodes(), tp.Chans()
	els := g.Elements()
	if len(els) != g.Size() {
		t.Fatalf("Elements() has %d entries, Size() = %d", len(els), g.Size())
	}

	// Identity acts trivially.
	id := g.Identity()
	for nd := 0; nd < n; nd++ {
		if got := g.ApplyNode(id, Node(nd)); got != Node(nd) {
			t.Fatalf("identity moves node %d to %d", nd, got)
		}
	}

	// Bound the exhaustive element loops for the big groups: check every
	// element's action properties, but pair-compose only a deterministic
	// sample.
	sample := els
	if len(sample) > 24 {
		step := len(sample)/24 + 1
		var s []AutID
		for i := 0; i < len(els); i += step {
			s = append(s, els[i])
		}
		sample = append(s, els[len(els)-1])
	}

	for _, a := range els {
		// Node action is a permutation.
		perm := make([]bool, n)
		for nd := 0; nd < n; nd++ {
			img := g.ApplyNode(a, Node(nd))
			if img < 0 || int(img) >= n || perm[img] {
				t.Fatalf("element %d: node action is not a permutation (node %d -> %d)", a, nd, img)
			}
			perm[img] = true
		}
		// Channel action is a permutation consistent with the node action:
		// sigma maps a channel to a channel between the image nodes
		// (adjacency preservation).
		cperm := make([]bool, c)
		for ch := 0; ch < c; ch++ {
			img := g.ApplyChan(a, Channel(ch))
			if img < 0 || int(img) >= c || cperm[img] {
				t.Fatalf("element %d: channel action is not a permutation (chan %d -> %d)", a, ch, img)
			}
			cperm[img] = true
			if tp.ChanSrc(img) != g.ApplyNode(a, tp.ChanSrc(Channel(ch))) ||
				tp.ChanDst(img) != g.ApplyNode(a, tp.ChanDst(Channel(ch))) {
				t.Fatalf("element %d does not preserve adjacency at channel %d", a, ch)
			}
		}
		// Inverse undoes the action and is a group inverse.
		inv := g.Inverse(a)
		if g.Compose(a, inv) != id || g.Compose(inv, a) != id {
			t.Fatalf("element %d: Inverse is not a two-sided inverse", a)
		}
		for nd := 0; nd < min(n, 16); nd++ {
			if got := g.ApplyNode(inv, g.ApplyNode(a, Node(nd))); got != Node(nd) {
				t.Fatalf("element %d: inverse does not undo node action (%d -> %d)", a, nd, got)
			}
		}
	}

	// Composition semantics and closure on the sample: Compose(a, b) acts as
	// "first a, then b" and lands on an element whose action matches.
	inEls := map[AutID]bool{}
	for _, a := range els {
		inEls[a] = true
	}
	for _, a := range sample {
		for _, b := range sample {
			ab := g.Compose(a, b)
			if !inEls[ab] {
				t.Fatalf("Compose(%d, %d) = %d not in Elements()", a, b, ab)
			}
			for nd := 0; nd < min(n, 16); nd++ {
				want := g.ApplyNode(b, g.ApplyNode(a, Node(nd)))
				if got := g.ApplyNode(ab, Node(nd)); got != want {
					t.Fatalf("Compose(%d, %d): node %d maps to %d, want %d", a, b, nd, got, want)
				}
			}
			for ch := 0; ch < min(c, 16); ch++ {
				want := g.ApplyChan(b, g.ApplyChan(a, Channel(ch)))
				if got := g.ApplyChan(ab, Channel(ch)); got != want {
					t.Fatalf("Compose(%d, %d): chan %d maps to %d, want %d", a, b, ch, got, want)
				}
			}
		}
	}

	// Folding invariants.
	classes := g.Classes()
	if len(classes) == 0 {
		t.Fatal("no pair classes")
	}
	var wsum float64
	for ci, cl := range classes {
		if cl.Src == cl.Dst {
			t.Fatalf("class %d is a self pair", ci)
		}
		if got := tp.MinDist(cl.Src, cl.Dst); got != cl.MinDist {
			t.Fatalf("class %d: MinDist %d, stored %d", ci, got, cl.MinDist)
		}
		wsum += cl.Weight
		// The representative folds to itself.
		rci, ra := g.PairAut(cl.Src, cl.Dst)
		if rci != ci {
			t.Fatalf("class %d rep folds to class %d", ci, rci)
		}
		if g.ApplyNode(ra, cl.Src) != cl.Src || g.ApplyNode(ra, cl.Dst) != cl.Dst {
			t.Fatalf("class %d rep automorphism does not fix the rep", ci)
		}
	}
	// Orbit weights account for every ordered non-self pair: sum = (N^2-N)/N.
	if want := float64(n) - 1; math.Abs(wsum-want) > 1e-9 {
		t.Fatalf("class weights sum to %v, want %v", wsum, want)
	}
	// Every pair folds onto its class representative via the returned
	// automorphism, and distances are invariant.
	counts := make([]float64, len(classes))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			ci, a := g.PairAut(Node(s), Node(d))
			if s == d {
				if ci != -1 {
					t.Fatalf("self pair (%d, %d) got class %d", s, d, ci)
				}
				continue
			}
			if ci < 0 || ci >= len(classes) {
				t.Fatalf("pair (%d, %d): class %d out of range", s, d, ci)
			}
			cl := classes[ci]
			if g.ApplyNode(a, Node(s)) != cl.Src || g.ApplyNode(a, Node(d)) != cl.Dst {
				t.Fatalf("pair (%d, %d) does not map onto class %d rep (%d, %d)",
					s, d, ci, cl.Src, cl.Dst)
			}
			if tp.MinDist(Node(s), Node(d)) != cl.MinDist {
				t.Fatalf("pair (%d, %d) distance differs from class %d", s, d, ci)
			}
			counts[ci]++
		}
	}
	for ci := range counts {
		if got := counts[ci] / float64(n); math.Abs(got-classes[ci].Weight) > 1e-9 {
			t.Fatalf("class %d: %v pairs/N folded, Weight says %v", ci, got, classes[ci].Weight)
		}
	}

	// Channel orbit representatives: ascending, disjoint orbits, full cover.
	reps := g.ChanOrbitReps()
	covered := make([]int, c)
	last := Channel(-1)
	for _, r := range reps {
		if r <= last {
			t.Fatalf("ChanOrbitReps not ascending at %d", r)
		}
		last = r
		for _, a := range els {
			covered[g.ApplyChan(a, r)]++
		}
	}
	for ch := 0; ch < c; ch++ {
		if covered[ch] == 0 {
			t.Fatalf("channel %d not covered by any orbit representative", ch)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
