package topo

// Dihedral indexes the eight symmetries of the square acting on torus
// coordinates (x, y) modulo k: the four rotations and four reflections.
// The action is linear over Z_k x Z_k, so it maps relative offsets to
// relative offsets and directions to directions.
type Dihedral int

const (
	// DihId is the identity (x, y).
	DihId Dihedral = iota
	// DihSwap maps (x, y) -> (y, x).
	DihSwap
	// DihNegX maps (x, y) -> (-x, y).
	DihNegX
	// DihNegY maps (x, y) -> (x, -y).
	DihNegY
	// DihNegXY maps (x, y) -> (-x, -y) (rotation by pi).
	DihNegXY
	// DihSwapNegX maps (x, y) -> (-y, x) (rotation by pi/2).
	DihSwapNegX
	// DihSwapNegY maps (x, y) -> (y, -x) (rotation by -pi/2).
	DihSwapNegY
	// DihSwapNegXY maps (x, y) -> (-y, -x).
	DihSwapNegXY
	// NumDihedral is the order of the dihedral group of the square.
	NumDihedral = 8
)

// Apply maps a coordinate pair through the dihedral element (before any
// modular reduction; callers reduce as needed).
func (m Dihedral) Apply(x, y int) (int, int) {
	switch m {
	case DihId:
		return x, y
	case DihSwap:
		return y, x
	case DihNegX:
		return -x, y
	case DihNegY:
		return x, -y
	case DihNegXY:
		return -x, -y
	case DihSwapNegX:
		return -y, x
	case DihSwapNegY:
		return y, -x
	case DihSwapNegXY:
		return -y, -x
	}
	//lint:ignore libpanic exhaustive switch over the dihedral enum; reachable only via an invalid constant
	panic("topo: invalid dihedral element")
}

// ApplyDir maps a direction through the dihedral element.
func (m Dihedral) ApplyDir(d Dir) Dir {
	dx, dy := d.Delta()
	nx, ny := m.Apply(dx, dy)
	switch {
	case nx == 1 && ny == 0:
		return XPlus
	case nx == -1 && ny == 0:
		return XMinus
	case nx == 0 && ny == 1:
		return YPlus
	case nx == 0 && ny == -1:
		return YMinus
	}
	//lint:ignore libpanic group invariant: dihedral elements permute unit steps
	panic("topo: dihedral direction image is not a unit step")
}

// Compose returns the element equivalent to applying first `m`, then `n`.
func (m Dihedral) Compose(n Dihedral) Dihedral {
	// Probe the composite action on the basis vectors and look it up.
	ax, ay := m.Apply(1, 0)
	bx, by := m.Apply(0, 1)
	ax, ay = n.Apply(ax, ay)
	bx, by = n.Apply(bx, by)
	for e := Dihedral(0); e < NumDihedral; e++ {
		ex, ey := e.Apply(1, 0)
		fx, fy := e.Apply(0, 1)
		if ex == ax && ey == ay && fx == bx && fy == by {
			return e
		}
	}
	//lint:ignore libpanic group invariant: the dihedral group is closed (covered by TestDihedralGroupClosure)
	panic("topo: dihedral composition not closed")
}

// Inverse returns the group inverse of the element.
func (m Dihedral) Inverse() Dihedral {
	for e := Dihedral(0); e < NumDihedral; e++ {
		if m.Compose(e) == DihId {
			return e
		}
	}
	//lint:ignore libpanic group invariant: every dihedral element has an inverse (covered by symmetry tests)
	panic("topo: dihedral element has no inverse")
}

// Aut is a torus automorphism: first the dihedral element M about the
// origin, then a translation by (Tx, Ty). As a map on coordinates,
// sigma(v) = M(v) + T (mod k).
type Aut struct {
	M      Dihedral
	Tx, Ty int
}

// ApplyNode maps a node through the automorphism.
func (t *Torus) ApplyNode(a Aut, n Node) Node {
	x, y := t.Coord(n)
	mx, my := a.M.Apply(x, y)
	return t.NodeAt(mx+a.Tx, my+a.Ty)
}

// ApplyChan maps a channel through the automorphism: the source node maps
// through the automorphism and the direction through its dihedral part.
func (t *Torus) ApplyChan(a Aut, c Channel) Channel {
	src := t.ApplyNode(a, t.ChanSrc(c))
	return t.Chan(src, a.M.ApplyDir(t.ChanDir(c)))
}

// PairAut returns an automorphism sigma with sigma(s) = 0 and
// sigma(d) = the canonical octant representative of the pair's relative
// offset. It also returns that canonical offset. This is the map used to
// express any pair's channel loads in terms of the canonical commodity's
// flow variables.
func (t *Torus) PairAut(s, d Node) (Aut, RelDest) {
	rx, ry := t.Rel(s, d)
	m, cx, cy := t.CanonicalRel(rx, ry)
	sx, sy := t.Coord(s)
	// sigma(v) = M(v - s): dihedral M preceded by translating s to 0.
	// In Aut form (dihedral then translate): M(v - s) = M(v) - M(s).
	msx, msy := m.Apply(sx, sy)
	return Aut{M: m, Tx: -msx, Ty: -msy}, RelDest{X: cx, Y: cy}
}

// CanonicalRel returns the dihedral element mapping the relative offset
// (rx, ry) into the fundamental octant 0 <= y <= x <= k/2, along with the
// canonical offset. Offsets are taken in [0, k).
func (t *Torus) CanonicalRel(rx, ry int) (Dihedral, int, int) {
	rx = mod(rx, t.K)
	ry = mod(ry, t.K)
	half := t.K / 2
	for m := Dihedral(0); m < NumDihedral; m++ {
		cx, cy := m.Apply(rx, ry)
		cx, cy = mod(cx, t.K), mod(cy, t.K)
		// In-octant test: both coordinates within minimal range and
		// ordered. For odd k, half rounds down and offsets above half
		// wrap to the negative side, so cx <= half captures minimality.
		if cx <= half && cy <= half && cy <= cx {
			return m, cx, cy
		}
	}
	//lint:ignore libpanic group invariant: the 8 dihedral images of any offset always include an octant representative
	panic("topo: no dihedral element canonicalizes offset")
}

// RelDest is a canonical relative destination (a commodity of the folded
// optimization problems).
type RelDest struct {
	X, Y int
}

// OctantDest describes one canonical commodity: its offset, the number of
// ordered (s, d) pairs per source whose relative offset folds onto it
// (its orbit weight), and its minimal path length.
type OctantDest struct {
	Rel     RelDest
	Orbit   int // how many raw offsets in Z_k^2 fold to this representative
	MinDist int
}

// OctantDests enumerates the canonical commodities of the torus: all
// offsets with 0 <= y <= x <= k/2 except the origin. The orbit weights sum
// to N-1 (every non-self offset folds somewhere).
func (t *Torus) OctantDests() []OctantDest {
	counts := make(map[RelDest]int)
	for rx := 0; rx < t.K; rx++ {
		for ry := 0; ry < t.K; ry++ {
			if rx == 0 && ry == 0 {
				continue
			}
			_, cx, cy := t.CanonicalRel(rx, ry)
			counts[RelDest{cx, cy}]++
		}
	}
	var dests []OctantDest
	half := t.K / 2
	for x := 0; x <= half; x++ {
		for y := 0; y <= x; y++ {
			if x == 0 && y == 0 {
				continue
			}
			rd := RelDest{x, y}
			if c, ok := counts[rd]; ok {
				dests = append(dests, OctantDest{
					Rel:     rd,
					Orbit:   c,
					MinDist: t.MinDist1D(x) + t.MinDist1D(y),
				})
			}
		}
	}
	return dests
}

// AllAuts enumerates the full automorphism group used for folding:
// 8 dihedral elements x N translations.
func (t *Torus) AllAuts() []Aut {
	auts := make([]Aut, 0, NumDihedral*t.N)
	for m := Dihedral(0); m < NumDihedral; m++ {
		for ty := 0; ty < t.K; ty++ {
			for tx := 0; tx < t.K; tx++ {
				auts = append(auts, Aut{M: m, Tx: tx, Ty: ty})
			}
		}
	}
	return auts
}
