package topo

import (
	"fmt"
	"strconv"
	"sync"
)

// Torus3D is a k-ary 3-cube: N = k^3 nodes at coordinates (x, y, z) =
// (n mod k, n/k mod k, n/k^2), each with six outgoing unit-bandwidth
// channels. Ports follow the 2D convention, extended by the z axis:
// 0 = +x, 1 = -x, 2 = +y, 3 = -y, 4 = +z, 5 = -z; channel c = n*6 + port.
//
// Its automorphism group is the translations composed with the
// hyperoctahedral group B3 — the 48 signed permutations of the three axes —
// extending the square's dihedral group (which is B2, the 8 signed
// permutations of two axes). The fundamental cone of the pair folding is
// 0 <= z <= y <= x <= k/2, the 3D analogue of the octant.
type Torus3D struct {
	K int // radix per dimension
	N int // number of nodes, k^3
	C int // number of channels, 6*k^3

	mmd  float64
	grp  *torus3dGroup
	tgrp *torus3dTransGroup
}

func init() {
	RegisterFamily("torus3d", func(spec string) (Topology, error) {
		k, err := strconv.Atoi(spec)
		if err != nil || k < 2 {
			return nil, fmt.Errorf("bad radix %q (want an integer >= 2)", spec)
		}
		return NewTorus3D(k), nil
	})
}

// torus3dPorts is the out-degree of every node.
const torus3dPorts = 6

// NewTorus3D constructs a k-ary 3-cube; k must be at least 2.
func NewTorus3D(k int) *Torus3D {
	if k < 2 {
		//lint:ignore libpanic construction-time misuse guard; Parse validates the radix before reaching here
		panic(fmt.Sprintf("topo: radix %d < 2", k))
	}
	t := &Torus3D{K: k, N: k * k * k, C: torus3dPorts * k * k * k}
	var total int
	for r := 0; r < k; r++ {
		total += t.minDist1D(r)
	}
	t.mmd = 3 * float64(total) / float64(k)
	t.grp = &torus3dGroup{t: t}
	t.tgrp = &torus3dTransGroup{t: t}
	return t
}

// Coord returns the (x, y, z) coordinates of a node.
func (t *Torus3D) Coord(n Node) (x, y, z int) {
	return int(n) % t.K, int(n) / t.K % t.K, int(n) / (t.K * t.K)
}

// NodeAt returns the node at coordinates (x, y, z), reduced modulo k.
func (t *Torus3D) NodeAt(x, y, z int) Node {
	x, y, z = mod(x, t.K), mod(y, t.K), mod(z, t.K)
	return Node((z*t.K+y)*t.K + x)
}

// portDelta returns the coordinate step of a port.
func portDelta(p int) (dx, dy, dz int) {
	switch p {
	case 0:
		return 1, 0, 0
	case 1:
		return -1, 0, 0
	case 2:
		return 0, 1, 0
	case 3:
		return 0, -1, 0
	case 4:
		return 0, 0, 1
	case 5:
		return 0, 0, -1
	}
	//lint:ignore libpanic exhaustive switch over the six 3-cube ports; reachable only via an invalid port
	panic("topo: invalid 3-cube port")
}

// minDist1D is the minimal ring distance for an offset r in [0, k).
func (t *Torus3D) minDist1D(r int) int {
	r = mod(r, t.K)
	if r > t.K-r {
		return t.K - r
	}
	return r
}

// rel returns the coordinates of d relative to s, each in [0, k).
func (t *Torus3D) rel(s, d Node) (rx, ry, rz int) {
	sx, sy, sz := t.Coord(s)
	dx, dy, dz := t.Coord(d)
	return mod(dx-sx, t.K), mod(dy-sy, t.K), mod(dz-sz, t.K)
}

// Topology interface.

func (t *Torus3D) Family() string { return "torus3d" }
func (t *Torus3D) Spec() string   { return strconv.Itoa(t.K) }
func (t *Torus3D) Nodes() int     { return t.N }
func (t *Torus3D) Chans() int     { return t.C }
func (t *Torus3D) MaxDeg() int    { return torus3dPorts }

func (t *Torus3D) OutDeg(Node) int { return torus3dPorts }

func (t *Torus3D) PortChan(n Node, p int) Channel {
	return Channel(int(n)*torus3dPorts + p)
}

func (t *Torus3D) ChanPort(c Channel) int { return int(c) % torus3dPorts }

func (t *Torus3D) ChanSrc(c Channel) Node { return Node(int(c) / torus3dPorts) }

func (t *Torus3D) ChanDst(c Channel) Node {
	x, y, z := t.Coord(t.ChanSrc(c))
	dx, dy, dz := portDelta(t.ChanPort(c))
	return t.NodeAt(x+dx, y+dy, z+dz)
}

// reversePort flips a port's sign bit: +x <-> -x etc.
func reversePort(p int) int { return p ^ 1 }

func (t *Torus3D) ReverseChan(c Channel) Channel {
	return t.PortChan(t.ChanDst(c), reversePort(t.ChanPort(c)))
}

func (t *Torus3D) MinDist(s, d Node) int {
	rx, ry, rz := t.rel(s, d)
	return t.minDist1D(rx) + t.minDist1D(ry) + t.minDist1D(rz)
}

func (t *Torus3D) MeanMinDist() float64 { return t.mmd }

func (t *Torus3D) VertexTransitive() bool { return true }

func (t *Torus3D) RelNode(s, d Node) Node {
	rx, ry, rz := t.rel(s, d)
	return Node((rz*t.K+ry)*t.K + rx)
}

func (t *Torus3D) Group() AutGroup      { return t.grp }
func (t *Torus3D) TransGroup() AutGroup { return t.tgrp }

// Hyperoctahedral group B3: the 48 signed permutations of the axes. Element
// m = permIdx*8 + signBits maps the coordinate vector v to w with
// w[i] = sign[i] * v[perm[i]], sign[i] = -1 when bit i of signBits is set.
const numB3 = 48

// b3Perms lists the 6 axis permutations in lexicographic order; b3Perms[0]
// with signBits 0 is the identity.
var b3Perms = [6][3]int{
	{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
}

// b3Apply maps a coordinate triple through element m (before modular
// reduction).
func b3Apply(m int, x, y, z int) (int, int, int) {
	v := [3]int{x, y, z}
	p := b3Perms[m/8]
	var w [3]int
	for i := 0; i < 3; i++ {
		w[i] = v[p[i]]
		if m>>i&1 == 1 {
			w[i] = -w[i]
		}
	}
	return w[0], w[1], w[2]
}

// b3Find returns the element whose action on the basis vectors matches the
// given images, scanning the fixed enumeration order.
func b3Find(e1, e2, e3 [3]int) int {
	for m := 0; m < numB3; m++ {
		x1, y1, z1 := b3Apply(m, 1, 0, 0)
		x2, y2, z2 := b3Apply(m, 0, 1, 0)
		x3, y3, z3 := b3Apply(m, 0, 0, 1)
		if [3]int{x1, y1, z1} == e1 && [3]int{x2, y2, z2} == e2 && [3]int{x3, y3, z3} == e3 {
			return m
		}
	}
	//lint:ignore libpanic group invariant: B3 is closed under composition (covered by the conformance suite)
	panic("topo: signed-permutation composition not closed")
}

// b3Compose returns the element equivalent to applying first a, then b.
func b3Compose(a, b int) int {
	probe := func(x, y, z int) [3]int {
		x, y, z = b3Apply(a, x, y, z)
		x, y, z = b3Apply(b, x, y, z)
		return [3]int{x, y, z}
	}
	return b3Find(probe(1, 0, 0), probe(0, 1, 0), probe(0, 0, 1))
}

// b3Inverse returns the group inverse.
func b3Inverse(a int) int {
	for m := 0; m < numB3; m++ {
		if b3Compose(a, m) == 0 {
			return m
		}
	}
	//lint:ignore libpanic group invariant: every B3 element has an inverse (covered by the conformance suite)
	panic("topo: signed permutation has no inverse")
}

// b3ApplyPort maps a port (direction) through element m.
func b3ApplyPort(m, p int) int {
	dx, dy, dz := portDelta(p)
	nx, ny, nz := b3Apply(m, dx, dy, dz)
	for q := 0; q < torus3dPorts; q++ {
		qx, qy, qz := portDelta(q)
		if qx == nx && qy == ny && qz == nz {
			return q
		}
	}
	//lint:ignore libpanic group invariant: signed permutations permute unit steps
	panic("topo: signed-permutation port image is not a unit step")
}

// aut3 is a concrete 3-torus automorphism: the B3 element m about the
// origin, then a translation: sigma(v) = M(v) + T (mod k).
type aut3 struct {
	m          int
	tx, ty, tz int
}

func (t *Torus3D) applyAut(a aut3, n Node) Node {
	x, y, z := t.Coord(n)
	mx, my, mz := b3Apply(a.m, x, y, z)
	return t.NodeAt(mx+a.tx, my+a.ty, mz+a.tz)
}

// canonicalRel returns the first B3 element (in enumeration order) mapping
// the relative offset into the fundamental cone 0 <= z <= y <= x <= k/2,
// along with the canonical offset — the 3D analogue of CanonicalRel.
func (t *Torus3D) canonicalRel(rx, ry, rz int) (int, int, int, int) {
	half := t.K / 2
	for m := 0; m < numB3; m++ {
		cx, cy, cz := b3Apply(m, rx, ry, rz)
		cx, cy, cz = mod(cx, t.K), mod(cy, t.K), mod(cz, t.K)
		if cx <= half && cy <= half && cz <= half && cz <= cy && cy <= cx {
			return m, cx, cy, cz
		}
	}
	//lint:ignore libpanic group invariant: the 48 signed-permutation images of any offset include a cone representative
	panic("topo: no signed permutation canonicalizes offset")
}

// torus3dGroup is the full automorphism group: 48 B3 elements x N
// translations. Element encoding: id = m*N + nodeAt(tx, ty, tz).
type torus3dGroup struct {
	t *Torus3D

	once     sync.Once
	classes  []PairClass
	classOf  map[Node]int // canonical cone destination node -> class index
	chanReps []Channel
}

func (g *torus3dGroup) encode(a aut3) AutID {
	return AutID(a.m*g.t.N + int(g.t.NodeAt(a.tx, a.ty, a.tz)))
}

func (g *torus3dGroup) decode(id AutID) aut3 {
	tx, ty, tz := g.t.Coord(Node(int(id) % g.t.N))
	return aut3{m: int(id) / g.t.N, tx: tx, ty: ty, tz: tz}
}

func (g *torus3dGroup) Size() int       { return numB3 * g.t.N }
func (g *torus3dGroup) Identity() AutID { return 0 }

func (g *torus3dGroup) Elements() []AutID {
	els := make([]AutID, g.Size())
	for i := range els {
		els[i] = AutID(i)
	}
	return els
}

func (g *torus3dGroup) ApplyNode(a AutID, n Node) Node {
	return g.t.applyAut(g.decode(a), n)
}

func (g *torus3dGroup) ApplyChan(a AutID, c Channel) Channel {
	aa := g.decode(a)
	src := g.t.applyAut(aa, g.t.ChanSrc(c))
	return g.t.PortChan(src, b3ApplyPort(aa.m, g.t.ChanPort(c)))
}

func (g *torus3dGroup) Compose(a, b AutID) AutID {
	aa, bb := g.decode(a), g.decode(b)
	sx, sy, sz := b3Apply(bb.m, aa.tx, aa.ty, aa.tz)
	return g.encode(aut3{m: b3Compose(aa.m, bb.m), tx: sx + bb.tx, ty: sy + bb.ty, tz: sz + bb.tz})
}

func (g *torus3dGroup) Inverse(a AutID) AutID {
	aa := g.decode(a)
	inv := b3Inverse(aa.m)
	sx, sy, sz := b3Apply(inv, aa.tx, aa.ty, aa.tz)
	return g.encode(aut3{m: inv, tx: -sx, ty: -sy, tz: -sz})
}

// fold enumerates the cone classes: count every offset's canonical image,
// then emit the cone in x-outer, y-middle, z-inner order (the 3D extension
// of the octant enumeration).
func (g *torus3dGroup) fold() {
	g.once.Do(func() {
		t := g.t
		counts := map[Node]int{}
		for rz := 0; rz < t.K; rz++ {
			for ry := 0; ry < t.K; ry++ {
				for rx := 0; rx < t.K; rx++ {
					if rx == 0 && ry == 0 && rz == 0 {
						continue
					}
					_, cx, cy, cz := t.canonicalRel(rx, ry, rz)
					counts[t.NodeAt(cx, cy, cz)]++
				}
			}
		}
		half := t.K / 2
		g.classOf = make(map[Node]int, len(counts))
		for x := 0; x <= half; x++ {
			for y := 0; y <= x; y++ {
				for z := 0; z <= y; z++ {
					if x == 0 && y == 0 && z == 0 {
						continue
					}
					dst := t.NodeAt(x, y, z)
					c, ok := counts[dst]
					if !ok {
						continue
					}
					g.classOf[dst] = len(g.classes)
					g.classes = append(g.classes, PairClass{
						Src:     0,
						Dst:     dst,
						Weight:  float64(c),
						MinDist: t.minDist1D(x) + t.minDist1D(y) + t.minDist1D(z),
					})
				}
			}
		}
		g.chanReps = genChanOrbitReps(t, g)
	})
}

func (g *torus3dGroup) PairAut(s, d Node) (int, AutID) {
	if s == d {
		return -1, 0
	}
	g.fold()
	t := g.t
	rx, ry, rz := t.rel(s, d)
	m, cx, cy, cz := t.canonicalRel(rx, ry, rz)
	// sigma(v) = M(v - s) = M(v) - M(s).
	sx, sy, sz := t.Coord(s)
	msx, msy, msz := b3Apply(m, sx, sy, sz)
	return g.classOf[t.NodeAt(cx, cy, cz)], g.encode(aut3{m: m, tx: -msx, ty: -msy, tz: -msz})
}

func (g *torus3dGroup) Classes() []PairClass {
	g.fold()
	return g.classes
}

func (g *torus3dGroup) ChanOrbitReps() []Channel {
	g.fold()
	return g.chanReps
}

// torus3dTransGroup is the translation subgroup: id = nodeAt(tx, ty, tz).
type torus3dTransGroup struct {
	t *Torus3D

	once    sync.Once
	classes []PairClass
}

func (g *torus3dTransGroup) Size() int       { return g.t.N }
func (g *torus3dTransGroup) Identity() AutID { return 0 }

func (g *torus3dTransGroup) Elements() []AutID {
	els := make([]AutID, g.t.N)
	for i := range els {
		els[i] = AutID(i)
	}
	return els
}

func (g *torus3dTransGroup) ApplyNode(a AutID, n Node) Node {
	tx, ty, tz := g.t.Coord(Node(a))
	x, y, z := g.t.Coord(n)
	return g.t.NodeAt(x+tx, y+ty, z+tz)
}

func (g *torus3dTransGroup) ApplyChan(a AutID, c Channel) Channel {
	return g.t.PortChan(g.ApplyNode(a, g.t.ChanSrc(c)), g.t.ChanPort(c))
}

func (g *torus3dTransGroup) Compose(a, b AutID) AutID {
	ax, ay, az := g.t.Coord(Node(a))
	bx, by, bz := g.t.Coord(Node(b))
	return AutID(g.t.NodeAt(ax+bx, ay+by, az+bz))
}

func (g *torus3dTransGroup) Inverse(a AutID) AutID {
	ax, ay, az := g.t.Coord(Node(a))
	return AutID(g.t.NodeAt(-ax, -ay, -az))
}

func (g *torus3dTransGroup) PairAut(s, d Node) (int, AutID) {
	if s == d {
		return -1, 0
	}
	sx, sy, sz := g.t.Coord(s)
	return int(g.t.RelNode(s, d)) - 1, AutID(g.t.NodeAt(-sx, -sy, -sz))
}

func (g *torus3dTransGroup) Classes() []PairClass {
	g.once.Do(func() {
		g.classes = make([]PairClass, g.t.N-1)
		for rel := 1; rel < g.t.N; rel++ {
			g.classes[rel-1] = PairClass{
				Src:     0,
				Dst:     Node(rel),
				Weight:  1,
				MinDist: g.t.MinDist(0, Node(rel)),
			}
		}
	})
	return g.classes
}

func (g *torus3dTransGroup) ChanOrbitReps() []Channel {
	reps := make([]Channel, torus3dPorts)
	for p := 0; p < torus3dPorts; p++ {
		reps[p] = g.t.PortChan(0, p)
	}
	return reps
}
