package topo

import (
	"fmt"
	"sort"
	"strings"
)

// This file defines the topology abstraction the rest of the module builds
// on: a Topology is any directed symmetric-channel interconnection graph,
// and an AutGroup is an explicit automorphism group acting on its nodes and
// channels. The Section 4 symmetry reduction — folding the O(N^2) commodity
// set onto canonical pair classes and expressing every pair's channel loads
// through an automorphism of the class representative — is implemented once,
// against these interfaces, and works for any registered family. The
// original k-ary 2-cube (Torus) is one implementation; the k-ary 3-cube
// (Torus3D) and the 2D mesh (Mesh) are the others.
//
// Conventions shared by every family:
//
//   - Nodes are integers in [0, Nodes()).
//   - Every channel has unit bandwidth, a source node, and a port index:
//     PortChan(n, p) for p in [0, OutDeg(n)) enumerates n's outgoing
//     channels, and ChanPort inverts it. On the torus families the port
//     index coincides with the Dir constants; on the mesh the port list is
//     compacted per node (border nodes have fewer ports).
//   - Every channel has a reverse: ReverseChan(c) is the oppositely
//     directed channel of the same physical link, so in-channels of a node
//     are exactly the reverses of its out-channels.

// Topology is an interconnection network with unit-bandwidth channels and
// an explicit automorphism group.
type Topology interface {
	// Family is the registered family name ("torus2d", "torus3d", "mesh").
	Family() string
	// Spec is the family-specific dimension string ("8", "4", "8x8");
	// Family() + ":" + Spec() round-trips through Parse.
	Spec() string
	// Nodes and Chans are the node and channel counts.
	Nodes() int
	Chans() int
	// MaxDeg is the maximum out-degree over all nodes; OutDeg the exact
	// out-degree of one node.
	MaxDeg() int
	OutDeg(n Node) int
	// PortChan returns the channel leaving n through port p (0 <= p <
	// OutDeg(n)); ChanPort returns a channel's port index at its source.
	PortChan(n Node, p int) Channel
	ChanPort(c Channel) int
	// ChanSrc and ChanDst are a channel's endpoint nodes.
	ChanSrc(c Channel) Node
	ChanDst(c Channel) Node
	// ReverseChan returns the oppositely directed channel of the same link.
	ReverseChan(c Channel) Channel
	// MinDist is the minimal hop count between two nodes; MeanMinDist its
	// average over all N^2 ordered pairs (self pairs contribute zero).
	MinDist(s, d Node) int
	MeanMinDist() float64
	// VertexTransitive reports whether the translation subgroup acts
	// transitively on nodes (true for the torus families, false for the
	// mesh). Vertex-transitive families support the per-source folding of
	// flow tables: RelNode and source-0 path tables.
	VertexTransitive() bool
	// RelNode returns the node whose offset from the origin equals the
	// offset of d from s. Valid only for vertex-transitive families.
	RelNode(s, d Node) Node
	// Group is the full automorphism group used for commodity folding.
	Group() AutGroup
	// TransGroup is the translation subgroup (trivial — identity only —
	// when the family is not vertex-transitive). Its channel-orbit
	// representatives are the separation oracle's work list: for the torus
	// families one channel per direction at the origin, for the mesh every
	// channel.
	TransGroup() AutGroup
}

// AutID indexes an element of an AutGroup. Encodings are group-private;
// callers treat IDs as opaque.
type AutID int

// PairClass is one orbit of ordered node pairs under a group: the class
// representative (Src, Dst), the orbit's weight, and the pairs' common
// minimal distance. Weight is the number of ordered pairs in the orbit
// divided by N; for the vertex-transitive groups it is an exact small
// integer (the per-source offset multiplicity of DESIGN.md Section 4).
type PairClass struct {
	Src, Dst Node
	Weight   float64
	MinDist  int
}

// AutGroup is an explicit automorphism group of a Topology, with the
// pair-folding machinery of the Section 4 symmetry reduction.
type AutGroup interface {
	// Size is the group order.
	Size() int
	// Identity returns the identity element.
	Identity() AutID
	// Elements enumerates the whole group (used by conformance tests and
	// small-group orbit computations).
	Elements() []AutID
	// ApplyNode and ApplyChan are the group action on nodes and channels.
	ApplyNode(a AutID, n Node) Node
	ApplyChan(a AutID, c Channel) Channel
	// Compose returns the element equivalent to applying first a, then b;
	// Inverse the group inverse.
	Compose(a, b AutID) AutID
	Inverse(a AutID) AutID
	// PairAut returns the pair class index of (s, d) and an automorphism
	// sigma with sigma(s) = Classes()[ci].Src and sigma(d) =
	// Classes()[ci].Dst. Self pairs return class -1 and the identity.
	PairAut(s, d Node) (int, AutID)
	// Classes enumerates the ordered-pair orbits in a fixed canonical
	// order; the class index of PairAut indexes this slice.
	Classes() []PairClass
	// ChanOrbitReps returns one representative channel per channel orbit,
	// in ascending channel order.
	ChanOrbitReps() []Channel
}

// parser constructs a family instance from its spec string.
type parser func(spec string) (Topology, error)

// families is the family registry; Register runs from init functions, so no
// locking is needed once the program is up.
var families = map[string]parser{}

// RegisterFamily installs a topology family under its name. It is intended
// to be called from init functions; duplicate registration panics.
func RegisterFamily(name string, p parser) {
	if _, dup := families[name]; dup {
		//lint:ignore libpanic registration-time misuse guard, reachable only from init-time programming errors
		panic("topo: duplicate family " + name)
	}
	families[name] = p
}

// Families returns the registered family names, sorted.
func Families() []string {
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Parse builds a topology from a "family:spec" string — "torus2d:8",
// "torus3d:4", "mesh:8x8". The bare form "torus2d" style (no colon) is
// rejected: every family needs its dimensions.
func Parse(s string) (Topology, error) {
	name, spec, ok := strings.Cut(s, ":")
	if !ok || name == "" || spec == "" {
		return nil, fmt.Errorf("topo: malformed topology %q (want family:spec, e.g. %q)", s, "torus2d:8")
	}
	p, ok := families[name]
	if !ok {
		return nil, fmt.Errorf("topo: unknown family %q (have %s)", name, strings.Join(Families(), ", "))
	}
	t, err := p(spec)
	if err != nil {
		return nil, fmt.Errorf("topo: %s: %w", name, err)
	}
	return t, nil
}

// String renders a topology back to its canonical "family:spec" form.
func String(t Topology) string { return t.Family() + ":" + t.Spec() }

// genPairClasses computes the ordered-pair orbits of a small explicit group
// by exhaustive folding: every ordered pair maps to the lexicographically
// least image under the group, classes are enumerated in ascending
// (src, dst) representative order. It is the generic fallback for groups
// without a closed-form canonicalization (the mesh); the torus groups use
// their analytic octant/cone forms instead.
func genPairClasses(t Topology, g AutGroup) (classes []PairClass, pairClass []int, pairAut []AutID) {
	n := t.Nodes()
	pairClass = make([]int, n*n)
	pairAut = make([]AutID, n*n)
	repIdx := map[int]int{} // canonical s*n+d -> class index
	els := g.Elements()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			idx := s*n + d
			if s == d {
				pairClass[idx] = -1
				pairAut[idx] = g.Identity()
				continue
			}
			best, bestAut := -1, g.Identity()
			for _, a := range els {
				key := int(g.ApplyNode(a, Node(s)))*n + int(g.ApplyNode(a, Node(d)))
				if best < 0 || key < best {
					best, bestAut = key, a
				}
			}
			ci, seen := repIdx[best]
			if !seen {
				ci = len(classes)
				repIdx[best] = ci
				classes = append(classes, PairClass{
					Src:     Node(best / n),
					Dst:     Node(best % n),
					MinDist: t.MinDist(Node(s), Node(d)),
				})
			}
			classes[ci].Weight++
			pairClass[idx] = ci
			pairAut[idx] = bestAut
		}
	}
	// Re-enumerate in ascending representative order so the class order is
	// independent of the fold discovery order.
	order := make([]int, len(classes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := classes[order[i]], classes[order[j]]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	perm := make([]int, len(classes))
	sorted := make([]PairClass, len(classes))
	for newIdx, oldIdx := range order {
		perm[oldIdx] = newIdx
		sorted[newIdx] = classes[oldIdx]
	}
	for idx := range pairClass {
		if pairClass[idx] >= 0 {
			pairClass[idx] = perm[pairClass[idx]]
		}
	}
	nf := float64(n)
	for i := range sorted {
		sorted[i].Weight /= nf
	}
	return sorted, pairClass, pairAut
}

// genChanOrbitReps computes one representative per channel orbit of a small
// explicit group, in ascending channel order.
func genChanOrbitReps(t Topology, g AutGroup) []Channel {
	seen := make([]bool, t.Chans())
	var reps []Channel
	els := g.Elements()
	for c := 0; c < t.Chans(); c++ {
		if seen[c] {
			continue
		}
		reps = append(reps, Channel(c))
		for _, a := range els {
			seen[g.ApplyChan(a, Channel(c))] = true
		}
	}
	return reps
}
