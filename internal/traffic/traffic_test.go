package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tcr/internal/topo"
)

func TestUniformIsDoublyStochastic(t *testing.T) {
	if e := Uniform(16).MaxStochasticityError(); e > 1e-12 {
		t.Fatalf("uniform error %v", e)
	}
}

func TestPermutationPatterns(t *testing.T) {
	tor := topo.NewTorus(8)
	for name, m := range map[string]*Matrix{
		"tornado":    Tornado(tor),
		"transpose":  Transpose(tor),
		"complement": Complement(tor),
		"diag3":      DiagonalShift(tor, 3),
		"random":     RandomPermutation(tor.N, rand.New(rand.NewSource(1))),
	} {
		if e := m.MaxStochasticityError(); e > 1e-12 {
			t.Errorf("%s: stochasticity error %v", name, e)
		}
		// Each row must have exactly one unit entry.
		for s := 0; s < m.N; s++ {
			ones, zeros := 0, 0
			for d := 0; d < m.N; d++ {
				switch m.L[s][d] {
				case 1:
					ones++
				case 0:
					zeros++
				}
			}
			if ones != 1 || zeros != m.N-1 {
				t.Fatalf("%s: row %d is not a permutation row", name, s)
			}
		}
	}
}

func TestTornadoDistance(t *testing.T) {
	// k=8: tornado shift is ceil(8/2)-1 = 3 hops.
	tor := topo.NewTorus(8)
	m := Tornado(tor)
	for s := 0; s < tor.N; s++ {
		for d := 0; d < tor.N; d++ {
			if m.L[s][d] == 1 {
				if got := tor.MinDist(topo.Node(s), topo.Node(d)); got != 3 {
					t.Fatalf("tornado hop distance %d, want 3", got)
				}
			}
		}
	}
}

func TestRandomDoublyStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		m := RandomDoublyStochastic(20, rng)
		if e := m.MaxStochasticityError(); e > 1e-9 {
			t.Fatalf("trial %d: error %v", trial, e)
		}
		for s := range m.L {
			for d := range m.L[s] {
				if m.L[s][d] < 0 {
					t.Fatalf("negative entry")
				}
			}
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	a := Sample(8, 3, 42)
	b := Sample(8, 3, 42)
	for i := range a {
		for s := range a[i].L {
			for d := range a[i].L[s] {
				if a[i].L[s][d] != b[i].L[s][d] {
					t.Fatal("same seed produced different samples")
				}
			}
		}
	}
	c := Sample(8, 1, 43)
	if a[0].L[0][0] == c[0].L[0][0] {
		t.Fatal("different seeds produced identical first entry (suspicious)")
	}
}

func TestBirkhoffDecomposePermutation(t *testing.T) {
	perm := []int{2, 0, 3, 1}
	terms, err := BirkhoffDecompose(Permutation(perm), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 1 || math.Abs(terms[0].Coef-1) > 1e-9 {
		t.Fatalf("got %d terms, first coef %v", len(terms), terms[0].Coef)
	}
	for i, j := range terms[0].Perm {
		if j != perm[i] {
			t.Fatalf("decomposition changed the permutation")
		}
	}
}

func TestBirkhoffDecomposeUniform(t *testing.T) {
	n := 6
	terms, err := BirkhoffDecompose(Uniform(n), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, tm := range terms {
		sum += tm.Coef
	}
	if math.Abs(sum-1) > 1e-7 {
		t.Fatalf("coefficients sum to %v", sum)
	}
	re := Recompose(n, terms)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if math.Abs(re.L[s][d]-1/float64(n)) > 1e-6 {
				t.Fatalf("recomposition off at (%d,%d): %v", s, d, re.L[s][d])
			}
		}
	}
}

func TestBirkhoffRejectsNonStochastic(t *testing.T) {
	m := NewMatrix(3)
	m.L[0][0] = 1
	m.L[1][1] = 0.5
	m.L[2][2] = 1
	if _, err := BirkhoffDecompose(m, 1e-9); err == nil {
		t.Fatal("expected rejection of substochastic matrix")
	}
}

// TestBirkhoffRoundTrip: random doubly-stochastic matrices decompose and
// recompose within tolerance; coefficient count stays polynomial.
func TestBirkhoffRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		m := RandomDoublyStochastic(n, rng)
		terms, err := BirkhoffDecompose(m, 1e-8)
		if err != nil {
			return false
		}
		if len(terms) > (n-1)*(n-1)+1+n { // theorem bound with slack
			return false
		}
		re := Recompose(n, terms)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if math.Abs(re.L[s][d]-m.L[s][d]) > 1e-5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAndClone(t *testing.T) {
	m := Uniform(4)
	c := m.Clone().Scale(0.5)
	if m.L[0][0] != 0.25 {
		t.Fatal("clone mutated the original")
	}
	if c.L[0][0] != 0.125 {
		t.Fatalf("scale produced %v", c.L[0][0])
	}
}
