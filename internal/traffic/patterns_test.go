package traffic

import (
	"math"
	"testing"

	"tcr/internal/topo"
)

func TestBitReverse(t *testing.T) {
	tor := topo.NewTorus(4) // N=16, power of two
	m, ok := BitReverse(tor)
	if !ok {
		t.Fatal("expected bit-reverse to exist for N=16")
	}
	if e := m.MaxStochasticityError(); e > 1e-12 {
		t.Fatalf("stochasticity error %v", e)
	}
	// Node 1 (0001) -> 8 (1000).
	if m.L[1][8] != 1 {
		t.Fatal("bit reversal of 1 should be 8")
	}
	// Applying twice is the identity.
	for s := 0; s < 16; s++ {
		var d int
		for j := 0; j < 16; j++ {
			if m.L[s][j] == 1 {
				d = j
			}
		}
		var back int
		for j := 0; j < 16; j++ {
			if m.L[d][j] == 1 {
				back = j
			}
		}
		if back != s {
			t.Fatalf("bit reverse not an involution at %d", s)
		}
	}
	if _, ok := BitReverse(topo.NewTorus(3)); ok {
		t.Fatal("N=9 must not support bit reversal")
	}
}

func TestShuffle(t *testing.T) {
	tor := topo.NewTorus(4)
	m, ok := Shuffle(tor)
	if !ok {
		t.Fatal("expected shuffle for N=16")
	}
	if e := m.MaxStochasticityError(); e > 1e-12 {
		t.Fatalf("stochasticity error %v", e)
	}
	// 0b0101 (5) rotates to 0b1010 (10).
	if m.L[5][10] != 1 {
		t.Fatal("shuffle of 5 should be 10")
	}
}

func TestNearestNeighbor(t *testing.T) {
	tor := topo.NewTorus(5)
	m := NearestNeighbor(tor)
	if e := m.MaxStochasticityError(); e > 1e-12 {
		t.Fatalf("stochasticity error %v", e)
	}
	for s := 0; s < tor.N; s++ {
		for d := 0; d < tor.N; d++ {
			if m.L[s][d] == 1 && tor.MinDist(topo.Node(s), topo.Node(d)) != 1 {
				t.Fatal("nearest neighbor not distance 1")
			}
		}
	}
}

func TestHotspot(t *testing.T) {
	tor := topo.NewTorus(4)
	for _, f := range []float64{0, 0.3, 1} {
		m, err := Hotspot(tor, f)
		if err != nil {
			t.Fatal(err)
		}
		if e := m.MaxStochasticityError(); e > 1e-9 {
			t.Fatalf("f=%v: stochasticity error %v", f, e)
		}
	}
	// f=0 is uniform.
	m, err := Hotspot(tor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.L[3][7]-1.0/16) > 1e-12 {
		t.Fatal("f=0 should be uniform")
	}
	if _, err := Hotspot(tor, 1.5); err == nil {
		t.Fatal("out-of-range fraction accepted")
	}
}

func TestNamed(t *testing.T) {
	tor := topo.NewTorus(4)
	for _, name := range []string{"uniform", "tornado", "transpose", "complement", "neighbor", "bitrev", "shuffle"} {
		m, ok := Named(tor, name)
		if !ok || m == nil {
			t.Fatalf("pattern %q missing", name)
		}
		if e := m.MaxStochasticityError(); e > 1e-9 {
			t.Fatalf("%s: stochasticity error %v", name, e)
		}
	}
	if _, ok := Named(tor, "nope"); ok {
		t.Fatal("unknown name must fail")
	}
	// bitrev on non-power-of-two must fail cleanly through Named.
	if _, ok := Named(topo.NewTorus(3), "bitrev"); ok {
		t.Fatal("bitrev on N=9 must fail")
	}
}
