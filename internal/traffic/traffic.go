// Package traffic provides the traffic-pattern machinery of the paper:
// doubly-stochastic traffic matrices, the uniform pattern, permutation
// patterns (including the named adversarial patterns used in torus studies),
// random sampling of doubly-stochastic matrices for the average-case cost
// function of Section 3.3, and the Birkhoff-von Neumann decomposition that
// underlies both the worst-case analysis (it is why permutations suffice as
// worst cases) and the appendix's dual interpretation.
package traffic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tcr/internal/matching"
	"tcr/internal/topo"
)

// Numerical tolerances for matrix generation and decomposition.
const (
	// sinkhornFloor keeps every sampled entry strictly positive so the
	// Sinkhorn iteration cannot divide by a zero row or column sum.
	sinkhornFloor = 1e-12
	// sinkhornTol stops the Sinkhorn iteration once every column sum is
	// within this distance of 1.
	sinkhornTol = 1e-12
	// stochasticCheckTol is how far row/column sums may deviate from 1
	// before BirkhoffDecompose rejects the matrix as not doubly
	// stochastic.
	stochasticCheckTol = 1e-6
)

// Matrix is a traffic pattern: L[s][d] is the fraction of source s's unit
// injection bandwidth destined to node d. Valid patterns are
// doubly-substochastic; the patterns of interest are doubly-stochastic
// (every row and column sums to one).
type Matrix struct {
	N int
	L [][]float64
}

// NewMatrix returns an all-zero n x n pattern.
func NewMatrix(n int) *Matrix {
	l := make([][]float64, n)
	buf := make([]float64, n*n)
	for i := range l {
		l[i] = buf[i*n : (i+1)*n]
	}
	return &Matrix{N: n, L: l}
}

// Uniform returns the uniform pattern U with u[s][d] = 1/N, the pattern that
// defines network capacity.
func Uniform(n int) *Matrix {
	m := NewMatrix(n)
	v := 1 / float64(n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			m.L[s][d] = v
		}
	}
	return m
}

// Permutation returns the pattern of a permutation: node s sends all its
// traffic to perm[s].
func Permutation(perm []int) *Matrix {
	m := NewMatrix(len(perm))
	for s, d := range perm {
		m.L[s][d] = 1
	}
	return m
}

// RandomPermutation returns a uniformly random permutation pattern.
func RandomPermutation(n int, rng *rand.Rand) *Matrix {
	return Permutation(rng.Perm(n))
}

// Tornado returns the tornado pattern on a torus: every node sends to the
// node almost half-way around its x ring, the classic adversary for minimal
// routing on tori.
func Tornado(t *topo.Torus) *Matrix {
	m := NewMatrix(t.N)
	shift := (t.K+1)/2 - 1 // ceil(k/2) - 1 hops in +x
	if shift == 0 {
		shift = 1
	}
	for n := 0; n < t.N; n++ {
		x, y := t.Coord(topo.Node(n))
		d := t.NodeAt(x+shift, y)
		m.L[n][d] = 1
	}
	return m
}

// Transpose returns the matrix-transpose pattern: (x, y) sends to (y, x).
func Transpose(t *topo.Torus) *Matrix {
	m := NewMatrix(t.N)
	for n := 0; n < t.N; n++ {
		x, y := t.Coord(topo.Node(n))
		m.L[n][t.NodeAt(y, x)] = 1
	}
	return m
}

// Complement returns the bit-complement-style pattern: (x, y) sends to
// (k-1-x, k-1-y).
func Complement(t *topo.Torus) *Matrix {
	m := NewMatrix(t.N)
	for n := 0; n < t.N; n++ {
		x, y := t.Coord(topo.Node(n))
		m.L[n][t.NodeAt(t.K-1-x, t.K-1-y)] = 1
	}
	return m
}

// DiagonalShift returns the permutation (x, y) -> (x+s, y+s): a family of
// benign patterns useful in tests.
func DiagonalShift(t *topo.Torus, s int) *Matrix {
	m := NewMatrix(t.N)
	for n := 0; n < t.N; n++ {
		x, y := t.Coord(topo.Node(n))
		m.L[n][t.NodeAt(x+s, y+s)] = 1
	}
	return m
}

// RandomDoublyStochastic samples a random doubly-stochastic matrix by
// Sinkhorn-normalizing an i.i.d. Exponential(1) matrix. This is the sample
// generator behind the average-case cost function (Section 3.3, |X| random
// traffic matrices).
func RandomDoublyStochastic(n int, rng *rand.Rand) *Matrix {
	m := NewMatrix(n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			m.L[s][d] = rng.ExpFloat64() + sinkhornFloor
		}
	}
	// Sinkhorn iteration: alternately normalize rows and columns.
	for iter := 0; iter < 10000; iter++ {
		var worst float64
		for s := 0; s < n; s++ {
			var sum float64
			for d := 0; d < n; d++ {
				sum += m.L[s][d]
			}
			inv := 1 / sum
			for d := 0; d < n; d++ {
				m.L[s][d] *= inv
			}
		}
		for d := 0; d < n; d++ {
			var sum float64
			for s := 0; s < n; s++ {
				sum += m.L[s][d]
			}
			if dev := math.Abs(sum - 1); dev > worst {
				worst = dev
			}
			inv := 1 / sum
			for s := 0; s < n; s++ {
				m.L[s][d] *= inv
			}
		}
		if worst < sinkhornTol {
			break
		}
	}
	return m
}

// Sample draws count independent doubly-stochastic matrices with a fixed
// seed, the set X of the average-case formulation.
func Sample(n, count int, seed int64) []*Matrix {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Matrix, count)
	for i := range out {
		out[i] = RandomDoublyStochastic(n, rng)
	}
	return out
}

// MaxStochasticityError returns the largest deviation of any row or column
// sum from one.
func (m *Matrix) MaxStochasticityError() float64 {
	var worst float64
	for s := 0; s < m.N; s++ {
		var sum float64
		for d := 0; d < m.N; d++ {
			sum += m.L[s][d]
		}
		if dev := math.Abs(sum - 1); dev > worst {
			worst = dev
		}
	}
	for d := 0; d < m.N; d++ {
		var sum float64
		for s := 0; s < m.N; s++ {
			sum += m.L[s][d]
		}
		if dev := math.Abs(sum - 1); dev > worst {
			worst = dev
		}
	}
	return worst
}

// Scale multiplies every entry by f (injection-rate scaling) and returns the
// receiver for chaining.
func (m *Matrix) Scale(f float64) *Matrix {
	for s := range m.L {
		for d := range m.L[s] {
			m.L[s][d] *= f
		}
	}
	return m
}

// Clone deep-copies the pattern.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	for s := range m.L {
		copy(c.L[s], m.L[s])
	}
	return c
}

// BirkhoffTerm is one component of a Birkhoff-von Neumann decomposition.
type BirkhoffTerm struct {
	Coef float64
	Perm []int
}

// ErrNotDoublyStochastic reports a decomposition request on a matrix that is
// not (numerically) doubly stochastic.
var ErrNotDoublyStochastic = errors.New("traffic: matrix is not doubly stochastic")

// BirkhoffDecompose expresses a doubly-stochastic matrix as a convex
// combination of at most (N-1)^2+1 permutation matrices (Birkhoff's theorem,
// reference [32] of the paper). The greedy construction repeatedly finds a
// perfect matching on the positive support and subtracts the support's
// minimum entry.
func BirkhoffDecompose(m *Matrix, tol float64) ([]BirkhoffTerm, error) {
	if err := checkDoublyStochastic(m, stochasticCheckTol); err != nil {
		return nil, err
	}
	n := m.N
	rem := m.Clone()
	var terms []BirkhoffTerm
	remaining := 1.0
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for remaining > tol {
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				adj[s][d] = rem.L[s][d] > tol/float64(n)
			}
		}
		perm, ok := matching.PerfectMatching(adj)
		if !ok {
			// Numerical crumbs remain but no full support matching:
			// spread the remainder on the last permutation found, or fail
			// if none exists.
			if len(terms) == 0 {
				return nil, fmt.Errorf("%w: no perfect matching on support", ErrNotDoublyStochastic)
			}
			terms[len(terms)-1].Coef += remaining
			remaining = 0
			break
		}
		coef := math.Inf(1)
		for s, d := range perm {
			if rem.L[s][d] < coef {
				coef = rem.L[s][d]
			}
		}
		if coef <= 0 {
			return nil, fmt.Errorf("%w: nonpositive support minimum", ErrNotDoublyStochastic)
		}
		if coef > remaining {
			coef = remaining
		}
		for s, d := range perm {
			rem.L[s][d] -= coef
		}
		p := make([]int, n)
		copy(p, perm)
		terms = append(terms, BirkhoffTerm{Coef: coef, Perm: p})
		remaining -= coef
	}
	return terms, nil
}

// Recompose sums coef * permutation over the terms; the inverse of
// BirkhoffDecompose up to the tolerance, used by tests.
func Recompose(n int, terms []BirkhoffTerm) *Matrix {
	m := NewMatrix(n)
	for _, t := range terms {
		for s, d := range t.Perm {
			m.L[s][d] += t.Coef
		}
	}
	return m
}

func checkDoublyStochastic(m *Matrix, tol float64) error {
	if e := m.MaxStochasticityError(); e > tol {
		return fmt.Errorf("%w: row/col sum error %g", ErrNotDoublyStochastic, e)
	}
	for s := range m.L {
		for d := range m.L[s] {
			if m.L[s][d] < -tol {
				return fmt.Errorf("%w: negative entry %g", ErrNotDoublyStochastic, m.L[s][d])
			}
		}
	}
	return nil
}
