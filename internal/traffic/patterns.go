package traffic

import (
	"fmt"
	"math/bits"

	"tcr/internal/topo"
)

// This file adds the remaining classic interconnection-network benchmark
// permutations. The paper's framework treats any doubly-stochastic matrix;
// these named patterns are the standard adversaries and benign baselines
// used across the torus-routing literature (and by the RLB/GOAL papers the
// SPAA'03 paper compares against), so the harness exposes them all.

// BitReverse returns the bit-reversal pattern: each node's index (over
// log2(N) bits) is reversed. The radix must make N a power of two; the
// pattern is a permutation in that case.
func BitReverse(t *topo.Torus) (*Matrix, bool) {
	n := t.N
	if n&(n-1) != 0 {
		return nil, false
	}
	width := bits.Len(uint(n)) - 1
	m := NewMatrix(n)
	for s := 0; s < n; s++ {
		d := int(bits.Reverse(uint(s)) >> (bits.UintSize - width))
		m.L[s][d] = 1
	}
	return m, true
}

// Shuffle returns the perfect-shuffle pattern d = (2s) mod (N-1) style
// rotation: each node's index bits rotate left by one. N must be a power of
// two.
func Shuffle(t *topo.Torus) (*Matrix, bool) {
	n := t.N
	if n&(n-1) != 0 {
		return nil, false
	}
	width := bits.Len(uint(n)) - 1
	mask := n - 1
	m := NewMatrix(n)
	for s := 0; s < n; s++ {
		d := ((s << 1) | (s >> (width - 1))) & mask
		m.L[s][d] = 1
	}
	return m, true
}

// NearestNeighbor returns the benign pattern in which every node sends to
// its +x neighbor: maximal locality, trivially routable.
func NearestNeighbor(t *topo.Torus) *Matrix {
	m := NewMatrix(t.N)
	for n := 0; n < t.N; n++ {
		x, y := t.Coord(topo.Node(n))
		m.L[n][t.NodeAt(x+1, y)] = 1
	}
	return m
}

// Hotspot returns a doubly-stochastic blend: fraction f of each node's
// traffic follows a permutation toward a "hot" diagonal shift, the rest is
// uniform. It models skewed but admissible load. It fails unless f is in
// [0, 1].
func Hotspot(t *topo.Torus, f float64) (*Matrix, error) {
	if f < 0 || f > 1 {
		return nil, fmt.Errorf("traffic: hotspot fraction %v out of [0, 1]", f)
	}
	m := NewMatrix(t.N)
	u := (1 - f) / float64(t.N)
	for s := 0; s < t.N; s++ {
		x, y := t.Coord(topo.Node(s))
		hot := t.NodeAt(x+t.K/2, y+t.K/2)
		for d := 0; d < t.N; d++ {
			m.L[s][d] = u
		}
		m.L[s][hot] += f
	}
	return m, nil
}

// Named returns the pattern with the given name on the torus, or ok=false.
// Names: uniform, tornado, transpose, complement, neighbor, bitrev,
// shuffle.
func Named(t *topo.Torus, name string) (*Matrix, bool) {
	switch name {
	case "uniform":
		return Uniform(t.N), true
	case "tornado":
		return Tornado(t), true
	case "transpose":
		return Transpose(t), true
	case "complement":
		return Complement(t), true
	case "neighbor":
		return NearestNeighbor(t), true
	case "bitrev":
		return BitReverse(t)
	case "shuffle":
		return Shuffle(t)
	}
	return nil, false
}
