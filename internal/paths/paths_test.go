package paths

import (
	"math"
	"math/rand"
	"testing"

	"tcr/internal/topo"
)

func TestPathWalk(t *testing.T) {
	tor := topo.NewTorus(4)
	p := Path{Src: tor.NodeAt(0, 0), Dirs: []topo.Dir{topo.XPlus, topo.XPlus, topo.YMinus}}
	if p.Len() != 3 {
		t.Fatalf("len = %d", p.Len())
	}
	if got := p.Dst(tor); got != tor.NodeAt(2, 3) {
		t.Fatalf("dst = %d, want (2,3)", got)
	}
	if chs := p.Channels(tor); len(chs) != 3 {
		t.Fatalf("channels = %v", chs)
	}
}

func TestTurnsAndUTurns(t *testing.T) {
	cases := []struct {
		dirs  []topo.Dir
		turns int
		uturn bool
	}{
		{[]topo.Dir{topo.XPlus, topo.XPlus}, 0, false},
		{[]topo.Dir{topo.XPlus, topo.YPlus}, 1, false},
		{[]topo.Dir{topo.XPlus, topo.YPlus, topo.XPlus}, 2, false},
		{[]topo.Dir{topo.XPlus, topo.YPlus, topo.XMinus}, 2, true},
		{[]topo.Dir{topo.YPlus, topo.XPlus, topo.YPlus, topo.XPlus}, 3, false},
		{nil, 0, false},
	}
	for i, c := range cases {
		p := Path{Src: 0, Dirs: c.dirs}
		if got := p.Turns(); got != c.turns {
			t.Errorf("case %d: turns = %d, want %d", i, got, c.turns)
		}
		if got := p.HasUTurn(); got != c.uturn {
			t.Errorf("case %d: uturn = %v, want %v", i, got, c.uturn)
		}
	}
}

func TestRevisitsChannel(t *testing.T) {
	tor := topo.NewTorus(4)
	// Going +x 4 times wraps the ring without revisiting a channel...
	p := Path{Src: 0, Dirs: []topo.Dir{topo.XPlus, topo.XPlus, topo.XPlus, topo.XPlus}}
	if p.RevisitsChannel(tor) {
		t.Error("full ring should not revisit channels")
	}
	// ...but a fifth hop does.
	p.Dirs = append(p.Dirs, topo.XPlus)
	if !p.RevisitsChannel(tor) {
		t.Error("k+1 hops must revisit a channel")
	}
}

func TestRemoveLoopsFigure3(t *testing.T) {
	// The paper's Figure 3 situation: phase 1 overshoots in x and phase 2
	// returns, creating a loop that removal splices out.
	tor := topo.NewTorus(8)
	s := tor.NodeAt(0, 0)
	// +x +x +x, then -x -x +y: the last two -x hops retrace nodes.
	p := Path{Src: s, Dirs: []topo.Dir{
		topo.XPlus, topo.XPlus, topo.XPlus, topo.XMinus, topo.XMinus, topo.YPlus}}
	clean := RemoveLoops(tor, p)
	if clean.Dst(tor) != p.Dst(tor) {
		t.Fatal("loop removal changed the destination")
	}
	if clean.Len() != 2 { // +x +y
		t.Fatalf("cleaned length = %d, want 2 (%v)", clean.Len(), clean)
	}
	// No node revisited afterwards.
	seen := map[topo.Node]bool{}
	for _, n := range clean.Nodes(tor) {
		if seen[n] {
			t.Fatal("cleaned path still revisits a node")
		}
		seen[n] = true
	}
}

func TestRemoveLoopsNeverIncreasesChannelLoad(t *testing.T) {
	tor := topo.NewTorus(5)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		dirs := make([]topo.Dir, rng.Intn(12))
		for i := range dirs {
			dirs[i] = topo.Dir(rng.Intn(topo.NumDirs))
		}
		p := Path{Src: topo.Node(rng.Intn(tor.N)), Dirs: dirs}
		clean := RemoveLoops(tor, p)
		if clean.Dst(tor) != p.Dst(tor) {
			t.Fatalf("trial %d: destination changed", trial)
		}
		// Channel usage of clean must be a sub-multiset of the original's.
		orig := map[topo.Channel]int{}
		for _, c := range p.Channels(tor) {
			orig[c]++
		}
		for _, c := range clean.Channels(tor) {
			orig[c]--
			if orig[c] < 0 {
				t.Fatalf("trial %d: loop removal added channel %d", trial, c)
			}
		}
		// Idempotence.
		again := RemoveLoops(tor, clean)
		if again.Len() != clean.Len() {
			t.Fatalf("trial %d: removal not idempotent", trial)
		}
	}
}

func TestDORPathsBasic(t *testing.T) {
	tor := topo.NewTorus(8)
	s := tor.NodeAt(1, 1)
	d := tor.NodeAt(3, 6)
	ws := DORPaths(tor, s, d, true)
	if len(ws) != 1 {
		t.Fatalf("expected unique DOR path, got %d", len(ws))
	}
	p := ws[0].Path
	if p.Dst(tor) != d {
		t.Fatal("DOR path misses destination")
	}
	if p.Len() != tor.MinDist(s, d) {
		t.Fatalf("DOR length %d, want %d", p.Len(), tor.MinDist(s, d))
	}
	// x hops must precede y hops.
	sawY := false
	for _, dir := range p.Dirs {
		if dir.IsX() && sawY {
			t.Fatal("x hop after y hop in x-first DOR")
		}
		if !dir.IsX() {
			sawY = true
		}
	}
}

func TestDORPathsTieSplit(t *testing.T) {
	tor := topo.NewTorus(8)
	s := tor.NodeAt(0, 0)
	d := tor.NodeAt(4, 4) // both dimensions tied
	ws := DORPaths(tor, s, d, true)
	if len(ws) != 4 {
		t.Fatalf("expected 4 tie-split paths, got %d", len(ws))
	}
	var sum float64
	for _, w := range ws {
		sum += w.Prob
		if w.Prob != 0.25 {
			t.Fatalf("tie probability %v, want 0.25", w.Prob)
		}
		if w.Path.Dst(tor) != d || w.Path.Len() != 8 {
			t.Fatal("tie path invalid")
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestDORPathsAllPairs(t *testing.T) {
	for _, k := range []int{4, 5, 8} {
		tor := topo.NewTorus(k)
		for s := topo.Node(0); s < topo.Node(tor.N); s++ {
			for d := topo.Node(0); d < topo.Node(tor.N); d++ {
				var sum float64
				for _, w := range DORPaths(tor, s, d, false) {
					sum += w.Prob
					if w.Path.Dst(tor) != d {
						t.Fatalf("k=%d (%d->%d): wrong destination", k, s, d)
					}
					if w.Path.Len() != tor.MinDist(s, d) {
						t.Fatalf("k=%d (%d->%d): non-minimal DOR", k, s, d)
					}
				}
				if math.Abs(sum-1) > 1e-12 {
					t.Fatalf("k=%d (%d->%d): prob sum %v", k, s, d, sum)
				}
			}
		}
	}
}

func TestTwoTurnPathsInvariants(t *testing.T) {
	for _, k := range []int{4, 5, 6, 8} {
		tor := topo.NewTorus(k)
		s := topo.Node(0)
		for d := topo.Node(0); d < topo.Node(tor.N); d++ {
			ps := TwoTurnPaths(tor, s, d)
			if len(ps) == 0 {
				t.Fatalf("k=%d: no two-turn paths to %d", k, d)
			}
			keys := map[string]bool{}
			for _, p := range ps {
				if p.Dst(tor) != d {
					t.Fatalf("k=%d dest %d: path ends at %d", k, d, p.Dst(tor))
				}
				if p.Turns() > 2 {
					t.Fatalf("k=%d dest %d: %d turns", k, d, p.Turns())
				}
				for h := 1; h < len(p.Dirs); h++ {
					if p.Dirs[h] == p.Dirs[h-1].Reverse() {
						t.Fatalf("k=%d dest %d: immediate reversal in %v", k, d, p)
					}
				}
				if p.RevisitsChannel(tor) {
					t.Fatalf("k=%d dest %d: channel revisit in %v", k, d, p)
				}
				if keys[p.Key()] {
					t.Fatalf("k=%d dest %d: duplicate path %v", k, d, p)
				}
				keys[p.Key()] = true
			}
			// The minimal DOR paths (no u-turn, <=1 turn) must be included.
			for _, w := range DORPaths(tor, s, d, true) {
				if !keys[w.Path.Key()] {
					t.Fatalf("k=%d dest %d: DOR path %v missing from two-turn set", k, d, w.Path)
				}
			}
		}
	}
}

func TestTwoTurnIncludesNonMinimal(t *testing.T) {
	tor := topo.NewTorus(8)
	// Destination one hop away: the long way around (7 hops) must appear.
	d := tor.NodeAt(1, 0)
	ps := TwoTurnPaths(tor, 0, d)
	foundLong := false
	for _, p := range ps {
		if p.Len() == 7 {
			foundLong = true
		}
	}
	if !foundLong {
		t.Fatal("two-turn set lacks the long-way-around path")
	}
	// Zero-offset dimension: full-ring traversals enable x-nonminimal
	// routing for an axis destination.
	d = tor.NodeAt(0, 3)
	foundRing := false
	for _, p := range TwoTurnPaths(tor, 0, d) {
		if p.Len() > 8 {
			foundRing = true
		}
	}
	if !foundRing {
		t.Fatal("two-turn set lacks full-ring options for axis destinations")
	}
}

// TestTwoTurnContainsIVALPaths checks the paper's claim that the 2TURN path
// space is a superset of IVAL's paths (Section 5.2).
func TestTwoTurnContainsIVALPaths(t *testing.T) {
	tor := topo.NewTorus(6)
	for d := topo.Node(0); d < topo.Node(tor.N); d++ {
		family := map[string]bool{}
		for _, p := range TwoTurnPaths(tor, 0, d) {
			family[p.Key()] = true
		}
		// Reconstruct IVAL's distribution inline (xy phase to every
		// intermediate, yx phase onward, loops removed).
		for i := topo.Node(0); i < topo.Node(tor.N); i++ {
			for _, p1 := range DORPaths(tor, 0, i, true) {
				for _, p2 := range DORPaths(tor, i, d, false) {
					p := RemoveLoops(tor, Concat(p1.Path, p2.Path))
					if p.Len() == 0 {
						continue // self traffic or fully cancelled
					}
					if !family[p.Key()] {
						t.Fatalf("dest %d: IVAL path %v missing from 2TURN family", d, p)
					}
				}
			}
		}
	}
}

func TestMinimalTwoTurnPaths(t *testing.T) {
	tor := topo.NewTorus(6)
	for d := topo.Node(1); d < topo.Node(tor.N); d++ {
		min := tor.MinDist(0, d)
		for _, p := range MinimalTwoTurnPaths(tor, 0, d) {
			if p.Len() != min {
				t.Fatalf("dest %d: non-minimal path in minimal set", d)
			}
		}
	}
}

func TestApplyAutomorphismPreservesShape(t *testing.T) {
	tor := topo.NewTorus(8)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		dirs := make([]topo.Dir, 1+rng.Intn(8))
		for i := range dirs {
			dirs[i] = topo.Dir(rng.Intn(topo.NumDirs))
		}
		p := Path{Src: topo.Node(rng.Intn(tor.N)), Dirs: dirs}
		a := topo.Aut{M: topo.Dihedral(rng.Intn(topo.NumDihedral)), Tx: rng.Intn(8), Ty: rng.Intn(8)}
		q := p.Apply(tor, a)
		if q.Len() != p.Len() || q.Turns() != p.Turns() {
			t.Fatal("automorphism changed length or turn count")
		}
		if q.Dst(tor) != tor.ApplyNode(a, p.Dst(tor)) {
			t.Fatal("automorphism image has wrong destination")
		}
	}
}

func TestConcat(t *testing.T) {
	tor := topo.NewTorus(4)
	p := Path{Src: 0, Dirs: []topo.Dir{topo.XPlus}}
	q := Path{Src: p.Dst(tor), Dirs: []topo.Dir{topo.YPlus}}
	c := Concat(p, q)
	if c.Len() != 2 || c.Dst(tor) != tor.NodeAt(1, 1) {
		t.Fatalf("concat = %v", c)
	}
}
