// Package paths provides the path machinery that oblivious routing
// functions are built from: a hop-sequence path representation, minimal
// dimension-order path enumeration with even tie-splitting, the loop-removal
// transformation of Figure 3 (the insight behind IVAL), and exhaustive
// enumeration of the at-most-two-turn path space that defines the 2TURN and
// 2TURNA algorithms.
package paths

import (
	"fmt"
	"strings"

	"tcr/internal/topo"
)

// Path is a walk through a topology: a source node and a sequence of hops.
// Each hop is the port index taken at the node reached so far; on the torus
// families ports coincide with the Dir constants, so the historical
// direction-sequence reading still holds there, while on the mesh an entry
// indexes the node's compacted port list.
type Path struct {
	Src  topo.Node
	Dirs []topo.Dir
}

// Len returns the number of hops.
func (p Path) Len() int { return len(p.Dirs) }

// Dst returns the node the path terminates at.
func (p Path) Dst(t topo.Topology) topo.Node {
	n := p.Src
	for _, d := range p.Dirs {
		n = t.ChanDst(t.PortChan(n, int(d)))
	}
	return n
}

// Nodes returns the node sequence visited, including source and destination
// (length Len()+1).
func (p Path) Nodes(t topo.Topology) []topo.Node {
	nodes := make([]topo.Node, 0, len(p.Dirs)+1)
	n := p.Src
	nodes = append(nodes, n)
	for _, d := range p.Dirs {
		n = t.ChanDst(t.PortChan(n, int(d)))
		nodes = append(nodes, n)
	}
	return nodes
}

// Channels returns the channel sequence the path crosses.
func (p Path) Channels(t topo.Topology) []topo.Channel {
	chs := make([]topo.Channel, 0, len(p.Dirs))
	n := p.Src
	for _, d := range p.Dirs {
		c := t.PortChan(n, int(d))
		chs = append(chs, c)
		n = t.ChanDst(c)
	}
	return chs
}

// Turns counts dimension changes along the path (X<->Y transitions).
func (p Path) Turns() int {
	turns := 0
	for i := 1; i < len(p.Dirs); i++ {
		if p.Dirs[i].IsX() != p.Dirs[i-1].IsX() {
			turns++
		}
	}
	return turns
}

// HasUTurn reports whether the path ever moves in both directions of the
// same dimension.
func (p Path) HasUTurn() bool {
	var plusX, minusX, plusY, minusY bool
	for _, d := range p.Dirs {
		switch d {
		//lint:ignore dirliteral u-turns are defined on torus2d dimension runs; callers are the 2D path families
		case topo.XPlus:
			plusX = true
		//lint:ignore dirliteral u-turns are defined on torus2d dimension runs; callers are the 2D path families
		case topo.XMinus:
			minusX = true
		//lint:ignore dirliteral u-turns are defined on torus2d dimension runs; callers are the 2D path families
		case topo.YPlus:
			plusY = true
		//lint:ignore dirliteral u-turns are defined on torus2d dimension runs; callers are the 2D path families
		case topo.YMinus:
			minusY = true
		}
	}
	return (plusX && minusX) || (plusY && minusY)
}

// RevisitsChannel reports whether any channel appears twice; such paths are
// excluded from all routing functions (Section 2.2).
func (p Path) RevisitsChannel(t topo.Topology) bool {
	seen := make(map[topo.Channel]bool, len(p.Dirs))
	n := p.Src
	for _, d := range p.Dirs {
		c := t.PortChan(n, int(d))
		if seen[c] {
			return true
		}
		seen[c] = true
		n = t.ChanDst(c)
	}
	return false
}

// Apply maps the path through a torus automorphism: the source through the
// full automorphism, each hop direction through its dihedral part.
func (p Path) Apply(t *topo.Torus, a topo.Aut) Path {
	dirs := make([]topo.Dir, len(p.Dirs))
	for i, d := range p.Dirs {
		dirs[i] = a.M.ApplyDir(d)
	}
	return Path{Src: t.ApplyNode(a, p.Src), Dirs: dirs}
}

// Concat joins two paths; q must start where p ends (callers guarantee it).
func Concat(p, q Path) Path {
	dirs := make([]topo.Dir, 0, len(p.Dirs)+len(q.Dirs))
	dirs = append(dirs, p.Dirs...)
	dirs = append(dirs, q.Dirs...)
	return Path{Src: p.Src, Dirs: dirs}
}

// String renders the path compactly for diagnostics.
func (p Path) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d:", int(p.Src))
	for _, d := range p.Dirs {
		b.WriteString(d.String())
	}
	return b.String()
}

// Key returns a map key identifying the path (source plus hop sequence).
func (p Path) Key() string { return p.String() }

// Weighted is a path with a probability mass in a routing distribution.
type Weighted struct {
	Path Path
	Prob float64
}

// RemoveLoops deletes every cycle from the walk: whenever a node is
// revisited, the hops between the two visits are spliced out. This is the
// transformation of Figure 3; it never increases the load on any channel
// (hops are only deleted), so applying it cannot reduce worst-case
// throughput while it strictly improves locality.
func RemoveLoops(t topo.Topology, p Path) Path {
	nodes := p.Nodes(t)
	// lastSeen[n] = index in the compacted node list.
	keptNodes := []topo.Node{nodes[0]}
	keptDirs := []topo.Dir{}
	pos := map[topo.Node]int{nodes[0]: 0}
	for i, d := range p.Dirs {
		next := nodes[i+1]
		if at, ok := pos[next]; ok {
			// Splice out the loop: drop everything after position `at`.
			for _, n := range keptNodes[at+1:] {
				delete(pos, n)
			}
			keptNodes = keptNodes[:at+1]
			keptDirs = keptDirs[:at]
			continue
		}
		keptDirs = append(keptDirs, d)
		keptNodes = append(keptNodes, next)
		pos[next] = len(keptNodes) - 1
	}
	return Path{Src: p.Src, Dirs: append([]topo.Dir(nil), keptDirs...)}
}

// dimTravel describes one way to cross a dimension: a direction and a total
// hop count (0 for no movement, up to k for a full ring).
type dimTravel struct {
	dir  topo.Dir
	hops int
}

// minimalTravels returns the minimal ways to cross a relative offset r in a
// ring of radix k along the given axis; ties (r == k-r) return both
// directions.
func minimalTravels(k, r int, plus, minus topo.Dir) []dimTravel {
	switch {
	case r == 0:
		return []dimTravel{{plus, 0}}
	case 2*r < k:
		return []dimTravel{{plus, r}}
	case 2*r > k:
		return []dimTravel{{minus, k - r}}
	default: // tie
		return []dimTravel{{plus, r}, {minus, k - r}}
	}
}

// singleTravels returns every way to cross a relative offset r with one
// segment of 1..k hops (k hops is a full ring, which touches every channel
// of the ring exactly once).
func singleTravels(k, r int, plus, minus topo.Dir) []dimTravel {
	var out []dimTravel
	if r != 0 {
		out = append(out, dimTravel{plus, r}, dimTravel{minus, k - r})
	} else {
		out = append(out, dimTravel{plus, k}, dimTravel{minus, k})
	}
	return out
}

// DORPaths enumerates the dimension-order minimal paths from s to d with
// their probabilities: one path normally, split evenly across directions
// when a dimension's offset is exactly half the radix (Table 1's DOR).
// xFirst selects the dimension traversal order.
func DORPaths(t *topo.Torus, s, d topo.Node, xFirst bool) []Weighted {
	rx, ry := t.Rel(s, d)
	//lint:ignore dirliteral DOR is a torus2d construction (Table 1)
	xOpts := minimalTravels(t.K, rx, topo.XPlus, topo.XMinus)
	//lint:ignore dirliteral DOR is a torus2d construction (Table 1)
	yOpts := minimalTravels(t.K, ry, topo.YPlus, topo.YMinus)
	out := make([]Weighted, 0, len(xOpts)*len(yOpts))
	prob := 1 / float64(len(xOpts)*len(yOpts))
	for _, xo := range xOpts {
		for _, yo := range yOpts {
			dirs := make([]topo.Dir, 0, xo.hops+yo.hops)
			if xFirst {
				dirs = appendRun(dirs, xo)
				dirs = appendRun(dirs, yo)
			} else {
				dirs = appendRun(dirs, yo)
				dirs = appendRun(dirs, xo)
			}
			out = append(out, Weighted{Path{Src: s, Dirs: dirs}, prob})
		}
	}
	return out
}

func appendRun(dirs []topo.Dir, tr dimTravel) []topo.Dir {
	for i := 0; i < tr.hops; i++ {
		dirs = append(dirs, tr.dir)
	}
	return dirs
}

// TwoTurnPaths enumerates every path from s to d with at most two turns and
// no u-turns, the path space of the 2TURN/2TURNA algorithms (Section 5.2).
// A u-turn is an immediate reversal within a dimension; the two
// same-dimension segments of an X-Y-X (or Y-X-Y) shape may run in opposite
// directions, which is what lets the family contain every IVAL path, as the
// paper requires. Paths that would revisit a channel are excluded, and each
// segment is at most one full ring.
func TwoTurnPaths(t *topo.Torus, s, d topo.Node) []Path {
	k := t.K
	rx, ry := t.Rel(s, d)
	var out []Path
	seen := make(map[string]bool)
	add := func(segs ...dimTravel) {
		var dirs []topo.Dir
		for _, sg := range segs {
			dirs = appendRun(dirs, sg)
		}
		p := Path{Src: s, Dirs: dirs}
		if p.Turns() > 2 || p.RevisitsChannel(t) {
			return
		}
		if key := p.Key(); !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}

	if rx == 0 && ry == 0 {
		add() // the empty path
	}
	// Straight runs (the other dimension's offset must be zero).
	if ry == 0 {
		//lint:ignore dirliteral 2TURN's path family is a torus2d construction (Section 5.2)
		for _, xo := range singleTravels(k, rx, topo.XPlus, topo.XMinus) {
			add(xo)
		}
	}
	if rx == 0 {
		//lint:ignore dirliteral 2TURN's path family is a torus2d construction (Section 5.2)
		for _, yo := range singleTravels(k, ry, topo.YPlus, topo.YMinus) {
			add(yo)
		}
	}
	//lint:ignore dirliteral 2TURN's path family is a torus2d construction (Section 5.2)
	xSingles := singleTravels(k, rx, topo.XPlus, topo.XMinus)
	//lint:ignore dirliteral 2TURN's path family is a torus2d construction (Section 5.2)
	ySingles := singleTravels(k, ry, topo.YPlus, topo.YMinus)
	if rx != 0 || ry != 0 {
		// One turn: X then Y, Y then X (both offsets nonzero, or a
		// full-ring segment for the zero one).
		for _, xo := range xSingles {
			for _, yo := range ySingles {
				add(xo, yo)
				add(yo, xo)
			}
		}
	}
	// Two turns: X-Y-X with independent segment directions, net
	// displacement rx (mod k); the Y segment crosses ry in one run.
	for _, yo := range ySingles {
		for _, seg := range splitSegments(k, rx) {
			add(seg[0], yo, seg[1])
		}
	}
	// Y-X-Y symmetric.
	for _, xo := range xSingles {
		//lint:ignore dirliteral 2TURN's path family is a torus2d construction (Section 5.2)
		for _, seg := range splitSegmentsDirs(k, ry, topo.YPlus, topo.YMinus) {
			add(seg[0], xo, seg[1])
		}
	}
	return out
}

// splitSegments enumerates ordered pairs of x-dimension segments
// (each 1..k hops, either direction) whose net displacement is r mod k.
func splitSegments(k, r int) [][2]dimTravel {
	//lint:ignore dirliteral 2TURN's path family is a torus2d construction (Section 5.2)
	return splitSegmentsDirs(k, r, topo.XPlus, topo.XMinus)
}

// splitSegmentsDirs is splitSegments for an arbitrary dimension.
func splitSegmentsDirs(k, r int, plus, minus topo.Dir) [][2]dimTravel {
	var out [][2]dimTravel
	sign := func(d topo.Dir) int {
		if d == plus {
			return 1
		}
		return -1
	}
	for _, d1 := range []topo.Dir{plus, minus} {
		for _, d2 := range []topo.Dir{plus, minus} {
			for t1 := 1; t1 <= k; t1++ {
				// net = sign1*t1 + sign2*t2 == r (mod k), 1 <= t2 <= k.
				net := sign(d1)*t1 - r
				var t2 int
				if sign(d2) > 0 {
					t2 = mod(-net, k)
				} else {
					t2 = mod(net, k)
				}
				if t2 == 0 {
					t2 = k
				}
				out = append(out, [2]dimTravel{{d1, t1}, {d2, t2}})
			}
		}
	}
	return out
}

// mod is the arithmetic remainder in [0, k).
func mod(a, k int) int {
	a %= k
	if a < 0 {
		a += k
	}
	return a
}

// MinimalTwoTurnPaths restricts TwoTurnPaths to minimal-length paths, the
// path space used to show that ROMM is average-case optimal among simple
// minimal algorithms (Section 5.4).
func MinimalTwoTurnPaths(t *topo.Torus, s, d topo.Node) []Path {
	min := t.MinDist(s, d)
	all := TwoTurnPaths(t, s, d)
	out := all[:0]
	for _, p := range all {
		if p.Len() == min {
			out = append(out, p)
		}
	}
	return append([]Path(nil), out...)
}
