package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdirModule writes a throwaway module, changes into it, and restores the
// working directory when the test ends.
func chdirModule(t *testing.T, files map[string]string) {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	prev, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(prev); err != nil {
			t.Fatal(err)
		}
	})
}

const dirtyModule = `package pkg

func Close(got float64) bool {
	return got == 0.1
}
`

func TestRunJSONFindings(t *testing.T) {
	chdirModule(t, map[string]string{
		"go.mod":     "module example.test\n\ngo 1.22\n",
		"pkg/pkg.go": dirtyModule,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings)\nstderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d JSON lines, want 1:\n%s", len(lines), stdout.String())
	}
	var d jsonDiag
	if err := json.Unmarshal([]byte(lines[0]), &d); err != nil {
		t.Fatalf("unmarshal %q: %v", lines[0], err)
	}
	if d.Analyzer != "floatcmp" || d.Line != 4 || d.Col == 0 || !strings.HasSuffix(d.File, "pkg.go") {
		t.Fatalf("diag = %+v", d)
	}
	if d.Message == "" {
		t.Fatal("empty message")
	}
}

func TestRunCleanModule(t *testing.T) {
	chdirModule(t, map[string]string{
		"go.mod":     "module example.test\n\ngo 1.22\n",
		"pkg/pkg.go": "package pkg\n\nfunc Double(x int) int { return x + x }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run wrote to stdout: %s", stdout.String())
	}
}

func TestRunTestsFlagExtendsCorpus(t *testing.T) {
	chdirModule(t, map[string]string{
		"go.mod":     "module example.test\n\ngo 1.22\n",
		"pkg/pkg.go": "package pkg\n\nfunc Double(x int) int { return x + x }\n",
		// The leak lives in a test helper: only test-aware analyzers (the
		// flow-sensitive four) report in _test.go files, and only when the
		// corpus actually includes them.
		"pkg/pkg_test.go": `package pkg

import "sync"

var mu sync.Mutex

func helper(cond bool) int {
	mu.Lock()
	if cond {
		return 0
	}
	mu.Unlock()
	return Double(1)
}
`,
	})
	var stdout, stderr bytes.Buffer
	// Without -tests the _test.go defect is invisible...
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit without -tests = %d, want 0\nstderr: %s", code, stderr.String())
	}
	// ...with it, the same tree is dirty.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-tests", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit with -tests = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "lockcheck") {
		t.Fatalf("stdout = %s", stdout.String())
	}
}

// TestRunDirLiteralFixture drives the topology-boundary rule end-to-end: a
// module with its own internal/topo defining the 2D vocabulary, one package
// hard-coding it (dirty), and the topo package itself (exempt).
func TestRunDirLiteralFixture(t *testing.T) {
	chdirModule(t, map[string]string{
		"go.mod": "module example.test\n\ngo 1.22\n",
		"internal/topo/topo.go": `package topo

type Dir int

const (
	XPlus Dir = iota
	XMinus
	YPlus
	YMinus
	NumDirs
)

// reverse may use the vocabulary freely: it is definitional here.
func reverse(d Dir) Dir { return d ^ 1 }
`,
		"internal/sim/sim.go": `package sim

import "example.test/internal/topo"

func Ports() int { return int(topo.NumDirs) }

func Fixed() topo.Dir { return topo.Dir(2) }

func Typed(p int) topo.Dir { return topo.Dir(p) }
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-rules", "dirliteral", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d findings, want 2 (NumDirs use + Dir literal):\n%s", len(lines), stdout.String())
	}
	for _, l := range lines {
		if !strings.Contains(l, "sim.go") || !strings.Contains(l, "dirliteral") {
			t.Fatalf("unexpected finding %q", l)
		}
	}
}

func TestRunUnknownRuleExits2(t *testing.T) {
	chdirModule(t, map[string]string{
		"go.mod":     "module example.test\n\ngo 1.22\n",
		"pkg/pkg.go": "package pkg\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "nosuchrule") {
		t.Fatalf("stderr = %s", stderr.String())
	}
}

func TestRunLoadErrorExits2(t *testing.T) {
	chdirModule(t, map[string]string{
		"go.mod":     "module example.test\n\ngo 1.22\n",
		"pkg/pkg.go": "package pkg\n\nfunc Broken( {\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr.String())
	}
}

func TestRunListNamesAllAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"floatcmp", "errdrop", "lockcheck", "goleak", "detwalk", "randsource"} {
		if !strings.Contains(stdout.String(), name) {
			t.Fatalf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

// failWriter fails every write, simulating a closed pipe downstream.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("pipe gone") }

func TestRunOutputFailureExits2(t *testing.T) {
	chdirModule(t, map[string]string{
		"go.mod":     "module example.test\n\ngo 1.22\n",
		"pkg/pkg.go": dirtyModule,
	})
	var stderr bytes.Buffer
	// Findings exist but never reach the consumer: the run must not report
	// the ordinary dirty status, let alone a clean one.
	if code := run([]string{"./..."}, failWriter{}, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "writing output") {
		t.Fatalf("stderr = %s", stderr.String())
	}
}
