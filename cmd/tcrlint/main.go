// Command tcrlint runs this repository's static-analysis pass (see
// internal/lint) over the module's packages and reports diagnostics in the
// conventional file:line:col form.
//
// Usage:
//
//	tcrlint [-rules floatcmp,errdrop,...] [-tests] [-json] [pattern ...]
//
// Patterns are directories relative to the module root; a trailing /...
// recurses. The default is ./... (the whole module). -tests extends the
// analysis to _test.go files (only analyzers that opt into test code
// report there). -json emits one JSON object per finding on stdout —
// {"file":..., "line":..., "col":..., "analyzer":..., "message":...} —
// for machine consumption.
//
// The exit status is a contract for CI:
//
//	0  every analyzed package is clean
//	1  at least one finding was reported
//	2  usage, load, type-check, or output error (results are incomplete)
//
// Findings are suppressed in source with:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// either trailing the offending line or alone on the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tcr/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// errWriter funnels all diagnostic output through one place, capturing the
// first write failure so a broken pipe downgrades the run to exit 2 instead
// of silently truncating the findings CI is about to trust.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

func run(args []string, stdout, stderr io.Writer) int {
	out := &errWriter{w: stdout}
	errw := &errWriter{w: stderr}

	fs := flag.NewFlagSet("tcrlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule subset (default: all)")
	list := fs.Bool("list", false, "list the registered rules and exit")
	tests := fs.Bool("tests", false, "also analyze _test.go files")
	asJSON := fs.Bool("json", false, "emit findings as JSON objects, one per line")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			out.printf("%-11s %s\n", a.Name, a.Doc)
		}
		return exitCode(out, errw, 0)
	}

	var names []string
	if *rules != "" {
		names = strings.Split(*rules, ",")
	}
	analyzers, err := lint.ByName(names)
	if err != nil {
		errw.printf("tcrlint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		errw.printf("tcrlint: %v\n", err)
		return 2
	}
	root, modPath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		errw.printf("tcrlint: %v\n", err)
		return 2
	}
	loader := lint.NewLoader(root, modPath)
	loader.Tests = *tests
	pkgs, err := loader.Load(patterns)
	if err != nil {
		errw.printf("tcrlint: %v\n", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	if *asJSON {
		for _, d := range diags {
			line, err := json.Marshal(jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Rule,
				Message:  d.Msg,
			})
			if err != nil {
				errw.printf("tcrlint: %v\n", err)
				return 2
			}
			out.printf("%s\n", line)
		}
	} else {
		for _, d := range diags {
			out.printf("%s\n", d)
		}
	}
	code := 0
	if len(diags) > 0 {
		errw.printf("tcrlint: %d finding(s)\n", len(diags))
		code = 1
	}
	return exitCode(out, errw, code)
}

// exitCode folds an output failure into the status: findings that never
// reached the consumer must not look like a clean (or merely dirty) run.
func exitCode(out, errw *errWriter, code int) int {
	if out.err != nil {
		errw.printf("tcrlint: writing output: %v\n", out.err)
		return 2
	}
	return code
}
