// Command tcrlint runs this repository's static-analysis pass (see
// internal/lint) over the module's packages and reports diagnostics in the
// conventional file:line:col form.
//
// Usage:
//
//	tcrlint [-rules floatcmp,errdrop,...] [pattern ...]
//
// Patterns are directories relative to the module root; a trailing /...
// recurses. The default is ./... (the whole module). Exit status is 0 when
// clean, 1 when there are findings, and 2 on usage or load errors. Findings
// are suppressed in source with:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// either trailing the offending line or alone on the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tcr/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tcrlint", flag.ContinueOnError)
	rules := fs.String("rules", "", "comma-separated rule subset (default: all)")
	list := fs.Bool("list", false, "list the registered rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var names []string
	if *rules != "" {
		names = strings.Split(*rules, ",")
	}
	analyzers, err := lint.ByName(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcrlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcrlint:", err)
		return 2
	}
	root, modPath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcrlint:", err)
		return 2
	}
	pkgs, err := lint.NewLoader(root, modPath).Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcrlint:", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tcrlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
