// Command tcrd serves the tcr design and evaluation engines over HTTP/JSON,
// backed by a content-addressed artifact store: every result is computed
// once, persisted with an integrity manifest, and replayed from disk for
// every later identical request. Concurrent identical requests coalesce onto
// one solve; admission to the solver pool is bounded, with overload answered
// by 429 + Retry-After rather than unbounded queueing.
//
// Endpoints:
//
//	POST /v1/eval        metrics of a named algorithm  {"k":8,"alg":"IVAL"}
//	POST /v1/worstperm   adversarial-permutation certificate
//	POST /v1/design      LP routing design ("kind":"wcopt"|"minloc";
//	                     add "async":true for the job API)
//	POST /v1/pareto      worst-case throughput/locality Pareto sweep
//	POST /v1/observe     NDJSON flow samples ({"src":i,"dst":j,"count":c}
//	                     per line; X-TCR-Tenant names the tenant) feeding
//	                     the online design loop
//	GET  /v1/online/{tenant}         estimator + controller status
//	GET  /v1/online/{tenant}/design  the tenant's published design (served
//	                     stale with X-TCR-Degraded: re-solving mid-re-solve)
//	GET  /v1/jobs/{id}           poll an async job
//	GET  /v1/jobs/{id}/result    fetch its stored artifact
//	GET  /healthz        liveness (503 while draining)
//	GET  /metrics        Prometheus text metrics
//
// Requests may carry "timeout_ms" (propagated into the solver as a deadline;
// expiry returns 504 with diagnostics) and design requests "max_rounds" (an
// exhausted budget returns the best iterate, uncertified and unpersisted,
// leaving its checkpoint behind so a retry resumes instead of restarting).
// SIGTERM/SIGINT drain gracefully: in-flight requests finish, background
// jobs abort at the next round boundary with their checkpoints on disk;
// -shutdown-timeout caps how long the drain waits for background jobs.
//
// Under overload, repeated solver failure, or an open circuit breaker
// (-breaker-threshold / -breaker-cooloff), the daemon degrades rather than
// failing: if the store holds a certified artifact adjacent to the request
// it is served 200 with X-TCR-Degraded, X-TCR-Staleness (seconds), and
// X-TCR-Fallback headers disclosing the substitution. /healthz reports
// ok, degraded, or draining; /metrics counts degraded serves per reason.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcr/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("tcrd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7421", "listen address")
	storeDir := fs.String("store", "tcr-store", "artifact store directory")
	workers := fs.Int("workers", 2, "concurrent solver slots")
	queue := fs.Int("queue", 8, "admission queue depth beyond running solves")
	solveWorkers := fs.Int("solve-workers", 0, "parallelism within one solve, 0 = all cores")
	flowCache := fs.Int("flowcache", 64, "flow-table LRU capacity")
	timeout := fs.Duration("timeout", 0, "default per-request deadline when the request sets none, 0 = none")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown budget for in-flight requests")
	shutdownTimeout := fs.Duration("shutdown-timeout", 0, "cap on waiting for background jobs at shutdown; expiry abandons them with their checkpoints persisted (0 = wait forever)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive solver failures that trip the circuit breaker (0 = default 5)")
	breakerCooloff := fs.Duration("breaker-cooloff", 0, "open-breaker interval before a probe solve is admitted (0 = default 30s)")
	jobTTL := fs.Duration("job-ttl", 0, "age after which finished async jobs are evicted from the jobs map (0 = default 1h)")
	jobMax := fs.Int("job-max", 0, "finished async jobs kept beyond the TTL bound (0 = default 1024)")
	onlineK := fs.Int("online-k", 0, "torus radix the online design loop re-solves for (0 = default 4)")
	onlineSeed := fs.Uint64("online-seed", 0, "seed for the online traffic sketches")
	driftThreshold := fs.Float64("drift-threshold", 0, "estimate-vs-served drift that trips a re-solve (0 = default 0.25)")
	onlineCooloff := fs.Int("online-cooloff", 0, "observe batches between re-solves (0 = default 2)")
	onlineMinSamples := fs.Float64("online-min-samples", 0, "sample mass required before controller decisions (0 = default 64)")
	onlineHMax := fs.Float64("online-hmax", 0, "top of the online locality operating grid (0 = default 1.5)")
	onlineHSteps := fs.Int("online-hsteps", 0, "points on the online locality operating grid (0 = default 5)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	srv, err := serve.New(serve.Config{
		StoreDir:         *storeDir,
		Workers:          *workers,
		QueueDepth:       *queue,
		SolveWorkers:     *solveWorkers,
		FlowCacheEntries: *flowCache,
		DefaultTimeout:   *timeout,
		DrainTimeout:     *drain,
		ShutdownTimeout:  *shutdownTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooloff:   *breakerCooloff,
		JobTTL:           *jobTTL,
		JobMaxDone:       *jobMax,
		OnlineK:          *onlineK,
		OnlineSeed:       *onlineSeed,
		DriftThreshold:   *driftThreshold,
		OnlineCooloff:    *onlineCooloff,
		OnlineMinSamples: *onlineMinSamples,
		OnlineHMax:       *onlineHMax,
		OnlineHSteps:     *onlineHSteps,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcrd:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "tcrd: serving on %s (store %s)\n", *addr, *storeDir)
	if err := srv.Run(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "tcrd:", err)
		os.Exit(1)
	}
}
