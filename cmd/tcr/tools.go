package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tcr"
	"tcr/internal/design"
	"tcr/internal/eval"
	"tcr/internal/routing"
	"tcr/internal/serve"
	"tcr/internal/store"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// This file holds the diagnostic subcommands beyond the figure pipeline:
//
//	worstperm  print the adversarial permutation the Hungarian oracle finds
//	design     run an LP design and export the routing table as JSON
//	loadmap    ASCII heat map of per-channel loads under a pattern
//
// They are registered from main's dispatch (see registerTools).

// algByName resolves the closed-form algorithms through the shared registry
// (routing.ByName), so the CLI and the tcrd daemon accept the same names.
func algByName(name string) (routing.Algorithm, bool) {
	return routing.ByName(name)
}

func cmdWorstPerm(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("worstperm", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	algName := fs.String("alg", "DOR", "algorithm name")
	asJSON := fs.Bool("json", false, "emit the artifact JSON line (the tcrd schema) instead of the TSV permutation")
	storeDir := fs.String("store", "", "artifact store directory: replay a stored certificate, persist a fresh one")
	if err := fs.Parse(args); err != nil {
		return err
	}

	alg, ok := algByName(*algName)
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algName)
	}
	t, err := newTorus(*k)
	if err != nil {
		return err
	}
	if *asJSON {
		st, err := openStore(*storeDir)
		if err != nil {
			return err
		}
		req := store.WorstPermRequest{K: *k, Alg: *algName}
		fp, err := req.Fingerprint()
		if err != nil {
			return err
		}
		b, err := artifactBytes(st, store.KindWorstPerm, fp, func() (any, bool, error) {
			art, err := serve.ComputeWorstPerm(ctx, req, nil, tcr.Concurrency)
			return art, err == nil, err
		})
		if err != nil {
			return err
		}
		return emit(b)
	}
	f, err := eval.FromAlgorithmCtx(ctx, t, alg, tcr.Concurrency)
	if err != nil {
		return err
	}
	gamma, perm, err := f.WorstCaseCtx(ctx, tcr.Concurrency)
	if err != nil {
		return err
	}
	fmt.Printf("# worst-case channel load for %s on %d-ary 2-cube: %.4f (throughput %.4f of capacity)\n",
		*algName, *k, gamma, (1/gamma)/eval.NetworkCapacity(t))
	fmt.Println("src_x\tsrc_y\tdst_x\tdst_y\thops")
	for s, d := range perm {
		sx, sy := t.Coord(topo.Node(s))
		dx, dy := t.Coord(topo.Node(d))
		fmt.Printf("%d\t%d\t%d\t%d\t%d\n", sx, sy, dx, dy, t.MinDist(topo.Node(s), topo.Node(d)))
	}
	return nil
}

func cmdDesign(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("design", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	topoSpec := fs.String("topo", "", `explicit topology "family:spec" (e.g. torus3d:4, mesh:8x8); overrides -k, wcopt only`)
	kind := fs.String("kind", "2turn", "2turn|2turna|wcopt")
	nSamples := fs.Int("samples", 50, "sample count for 2turna")
	seed := fs.Int64("seed", 1, "sample seed")
	ckpt := fs.String("checkpoint", "", "checkpoint file for a resumable wcopt design (see DESIGN.md)")
	rounds := fs.Int("rounds", 0, "cutting-plane round budget, 0 = default (wcopt exits 4 when exhausted)")
	storeDir := fs.String("store", "", "artifact store directory for wcopt: replay a stored design, persist and checkpoint a fresh one")
	out := fs.String("o", "", "output JSON path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var t topo.Topology
	var err error
	if *topoSpec != "" {
		if *kind != "wcopt" {
			return fmt.Errorf("-topo supports only -kind wcopt (%q is a torus2d path-family design)", *kind)
		}
		if t, err = topo.Parse(*topoSpec); err != nil {
			return err
		}
	} else if t, err = newTorus(*k); err != nil {
		return err
	}
	var tbl *routing.Table
	switch *kind {
	case "2turn":
		res, err := tcr.Design2TurnCtx(ctx, t.(*tcr.Torus), tcr.DesignOptions{})
		if err != nil {
			return err
		}
		tbl = res.Table
		fmt.Fprintf(os.Stderr, "2TURN: H=%.4f gamma_wc=%.4f\n", res.HNorm, res.GammaWC)
	case "2turna":
		tor := t.(*tcr.Torus)
		samples := tcr.SampleTraffic(tor, *nSamples, *seed)
		res, err := tcr.Design2TurnACtx(ctx, tor, samples, tcr.DesignOptions{})
		if err != nil {
			return err
		}
		tbl = res.Table
		fmt.Fprintf(os.Stderr, "2TURNA: H=%.4f mean-max-load=%.4f\n", res.HNorm, res.Objective)
	case "wcopt":
		tbl, err = designWcopt(ctx, t, *ckpt, *rounds, *storeDir)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown design kind %q", *kind)
	}

	// The 2D torus keeps the historical direction-string format (golden
	// compatibility); other families serialize port indices.
	write := func(w io.Writer) error {
		if tor, ok := t.(*tcr.Torus); ok {
			return tbl.WriteJSON(w, tor)
		}
		return tbl.WritePortsJSON(w, t)
	}
	if *out == "" {
		return write(os.Stdout)
	}
	file, err := os.Create(*out)
	if err != nil {
		return err
	}
	werr := write(file)
	cerr := file.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// designWcopt runs — or replays from the artifact store — the lexicographic
// worst-case design and decomposes it into an executable table. The CLI's
// "wcopt" calls MinLocalityAtWorstCase (throughput first, then locality),
// which is the store kind "minloc": CLI runs and daemon requests share one
// artifact slot and one checkpoint. With a store and no explicit
// -checkpoint, the checkpoint lives in the store, keyed by the request
// fingerprint, so an interrupted run resumes from wherever it died —
// whether the interrupted run was this CLI or a tcrd daemon. Only certified
// results are persisted; an uncertified budget exhaustion leaves just the
// checkpoint behind and exits 4 as before.
func designWcopt(ctx context.Context, t topo.Topology, ckpt string, rounds int, storeDir string) (*routing.Table, error) {
	st, err := openStore(storeDir)
	if err != nil {
		return nil, err
	}
	// The 2D torus canonicalizes to the legacy radix form so CLI runs,
	// daemon requests, and pre-existing artifacts keep sharing fingerprints.
	req := store.DesignRequest{Kind: store.DesignMinLocality}
	if tor, ok := t.(*tcr.Torus); ok {
		req.K = tor.K
	} else {
		req.Topology = topo.String(t)
	}
	fp, err := req.Fingerprint()
	if err != nil {
		return nil, err
	}
	if st != nil && ckpt == "" {
		if ckpt, err = st.CheckpointPath(store.KindDesign, fp); err != nil {
			return nil, err
		}
	}
	b, err := artifactBytes(st, store.KindDesign, fp, func() (any, bool, error) {
		// Slack 0 selects the design package's default stage-2 slack.
		art, err := serve.ComputeDesign(ctx, req, design.Options{
			Checkpoint: ckpt,
			MaxRounds:  rounds,
			Workers:    tcr.Concurrency,
		})
		if err != nil {
			return nil, false, err
		}
		return art, art.Certified, nil
	})
	if err != nil {
		return nil, err
	}
	var art store.DesignArtifact
	if err := json.Unmarshal(b, &art); err != nil {
		return nil, fmt.Errorf("design artifact decode: %w", err)
	}
	if !art.Certified {
		fmt.Fprintf(os.Stderr, "wc-opt: best known H=%.4f gamma_wc=%.4f after %d rounds (uncertified)\n",
			art.HNorm, art.GammaWC, art.Rounds)
		return nil, fmt.Errorf("wc-opt: %w: %s", design.ErrUncertified, art.Reason)
	}
	flow, err := serve.ArtifactFlow(t, &art)
	if err != nil {
		return nil, err
	}
	alg, err := design.DecomposeFlow(flow, "wc-opt")
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "wc-opt: H=%.4f gamma_wc=%.4f\n", art.HNorm, art.GammaWC)
	return alg, nil
}

func cmdLoadMap(args []string) error {
	fs := flag.NewFlagSet("loadmap", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	algName := fs.String("alg", "DOR", "algorithm name")
	pattern := fs.String("pattern", "tornado", "uniform|tornado|transpose|complement|neighbor|bitrev|shuffle")
	if err := fs.Parse(args); err != nil {
		return err
	}

	alg, ok := algByName(*algName)
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algName)
	}
	t, err := newTorus(*k)
	if err != nil {
		return err
	}
	lam, ok := traffic.Named(t, *pattern)
	if !ok {
		return fmt.Errorf("pattern %q unavailable on k=%d", *pattern, *k)
	}
	f := eval.FromAlgorithm(t, alg)
	loads := f.ChannelLoads(lam)
	var max float64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	fmt.Printf("# %s under %s on %d-ary 2-cube: gamma_max = %.4f\n", *algName, *pattern, *k, max)
	ramp := " .:-=+*#%@"
	//lint:ignore dirliteral loadmap renders the four torus2d direction planes by definition
	for dir := topo.Dir(0); dir < topo.NumDirs; dir++ {
		fmt.Printf("\n%s channels (rows are y, columns x):\n", dir)
		for y := *k - 1; y >= 0; y-- {
			var sb strings.Builder
			for x := 0; x < *k; x++ {
				l := loads[t.Chan(t.NodeAt(x, y), dir)]
				idx := 0
				if max > 0 {
					idx = int(l / max * float64(len(ramp)-1))
				}
				sb.WriteByte(ramp[idx])
			}
			fmt.Println(sb.String())
		}
	}
	return nil
}
