package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"tcr"
	"tcr/internal/design"
	"tcr/internal/eval"
	"tcr/internal/routing"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// This file holds the diagnostic subcommands beyond the figure pipeline:
//
//	worstperm  print the adversarial permutation the Hungarian oracle finds
//	design     run an LP design and export the routing table as JSON
//	loadmap    ASCII heat map of per-channel loads under a pattern
//
// They are registered from main's dispatch (see registerTools).

// algByName resolves the closed-form algorithms plus O1TURN.
func algByName(name string) (routing.Algorithm, bool) {
	algs := map[string]routing.Algorithm{
		"DOR": routing.DOR{}, "VAL": routing.VAL{}, "IVAL": routing.IVAL{},
		"ROMM": routing.ROMM{}, "RLB": routing.RLB{},
		"RLBth": routing.RLB{Threshold: true}, "O1TURN": routing.O1TURN{},
		"GOALish": routing.GOALish{},
	}
	a, ok := algs[name]
	return a, ok
}

func cmdWorstPerm(args []string) error {
	fs := flag.NewFlagSet("worstperm", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	algName := fs.String("alg", "DOR", "algorithm name")
	if err := fs.Parse(args); err != nil {
		return err
	}

	alg, ok := algByName(*algName)
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algName)
	}
	t, err := newTorus(*k)
	if err != nil {
		return err
	}
	f := eval.FromAlgorithm(t, alg)
	gamma, perm := f.WorstCase()
	fmt.Printf("# worst-case channel load for %s on %d-ary 2-cube: %.4f (throughput %.4f of capacity)\n",
		*algName, *k, gamma, (1/gamma)/eval.NetworkCapacity(t))
	fmt.Println("src_x\tsrc_y\tdst_x\tdst_y\thops")
	for s, d := range perm {
		sx, sy := t.Coord(topo.Node(s))
		dx, dy := t.Coord(topo.Node(d))
		fmt.Printf("%d\t%d\t%d\t%d\t%d\n", sx, sy, dx, dy, t.MinDist(topo.Node(s), topo.Node(d)))
	}
	return nil
}

func cmdDesign(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("design", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	kind := fs.String("kind", "2turn", "2turn|2turna|wcopt")
	nSamples := fs.Int("samples", 50, "sample count for 2turna")
	seed := fs.Int64("seed", 1, "sample seed")
	ckpt := fs.String("checkpoint", "", "checkpoint file for a resumable wcopt design (see DESIGN.md)")
	rounds := fs.Int("rounds", 0, "cutting-plane round budget, 0 = default (wcopt exits 4 when exhausted)")
	out := fs.String("o", "", "output JSON path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	t, err := newTorus(*k)
	if err != nil {
		return err
	}
	var tbl *routing.Table
	switch *kind {
	case "2turn":
		res, err := tcr.Design2TurnCtx(ctx, t, tcr.DesignOptions{})
		if err != nil {
			return err
		}
		tbl = res.Table
		fmt.Fprintf(os.Stderr, "2TURN: H=%.4f gamma_wc=%.4f\n", res.HNorm, res.GammaWC)
	case "2turna":
		samples := tcr.SampleTraffic(t, *nSamples, *seed)
		res, err := tcr.Design2TurnACtx(ctx, t, samples, tcr.DesignOptions{})
		if err != nil {
			return err
		}
		tbl = res.Table
		fmt.Fprintf(os.Stderr, "2TURNA: H=%.4f mean-max-load=%.4f\n", res.HNorm, res.Objective)
	case "wcopt":
		// Slack 0 selects the design package's default stage-2 slack.
		res, err := design.MinLocalityAtWorstCaseCtx(ctx, t, design.Options{Checkpoint: *ckpt, MaxRounds: *rounds})
		if err != nil {
			return err
		}
		if !res.Certified {
			fmt.Fprintf(os.Stderr, "wc-opt: best known H=%.4f gamma_wc=%.4f after %d rounds (uncertified)\n",
				res.HNorm, res.GammaWC, res.Rounds)
			return fmt.Errorf("wc-opt: %w: %s", design.ErrUncertified, res.Reason)
		}
		alg, err := design.DecomposeFlow(res.Flow, "wc-opt")
		if err != nil {
			return err
		}
		tbl = alg
		fmt.Fprintf(os.Stderr, "wc-opt: H=%.4f gamma_wc=%.4f\n", res.HNorm, res.GammaWC)
	default:
		return fmt.Errorf("unknown design kind %q", *kind)
	}

	if *out == "" {
		return tbl.WriteJSON(os.Stdout, t)
	}
	file, err := os.Create(*out)
	if err != nil {
		return err
	}
	werr := tbl.WriteJSON(file, t)
	cerr := file.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func cmdLoadMap(args []string) error {
	fs := flag.NewFlagSet("loadmap", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	algName := fs.String("alg", "DOR", "algorithm name")
	pattern := fs.String("pattern", "tornado", "uniform|tornado|transpose|complement|neighbor|bitrev|shuffle")
	if err := fs.Parse(args); err != nil {
		return err
	}

	alg, ok := algByName(*algName)
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algName)
	}
	t, err := newTorus(*k)
	if err != nil {
		return err
	}
	lam, ok := traffic.Named(t, *pattern)
	if !ok {
		return fmt.Errorf("pattern %q unavailable on k=%d", *pattern, *k)
	}
	f := eval.FromAlgorithm(t, alg)
	loads := f.ChannelLoads(lam)
	var max float64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	fmt.Printf("# %s under %s on %d-ary 2-cube: gamma_max = %.4f\n", *algName, *pattern, *k, max)
	ramp := " .:-=+*#%@"
	for dir := topo.Dir(0); dir < topo.NumDirs; dir++ {
		fmt.Printf("\n%s channels (rows are y, columns x):\n", dir)
		for y := *k - 1; y >= 0; y-- {
			var sb strings.Builder
			for x := 0; x < *k; x++ {
				l := loads[t.Chan(t.NodeAt(x, y), dir)]
				idx := 0
				if max > 0 {
					idx = int(l / max * float64(len(ramp)-1))
				}
				sb.WriteByte(ramp[idx])
			}
			fmt.Println(sb.String())
		}
	}
	return nil
}
