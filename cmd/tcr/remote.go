package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tcr/internal/client"
	"tcr/internal/store"
)

// tcr remote drives a running tcrd daemon through internal/client instead
// of computing locally: same artifact schema on stdout as the -json modes,
// but the solve (and the store) live in the daemon. The client's retry,
// hedging, and budget-propagation policy apply; when the daemon answers
// with a stale-but-certified fallback (overload, tripped breaker, solver
// failure) the artifact is still emitted and the degradation is reported
// on stderr so pipelines can decide whether stale is acceptable.

func cmdRemote(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("remote", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7421", "tcrd base URL")
	attempts := fs.Int("attempts", 4, "attempts per request (retries on 429/5xx and transport errors)")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "base retry backoff, doubled per retry and jittered; Retry-After floors it")
	hedge := fs.Duration("hedge", 0, "hedge delay: duplicate an unanswered request after this long (0 disables)")
	attemptTimeout := fs.Duration("attempt-timeout", 0, "per-attempt timeout (0 = none)")
	timeout := fs.Duration("timeout", 0, "overall budget, propagated to the daemon as the solve deadline (0 = none)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: tcr remote [flags] <eval|worstperm|design|pareto> [verb flags]
run "tcr remote -addr URL <verb> -h" for verb flags`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(exitUsage)
	}
	c, err := client.New(client.Config{
		BaseURL:        *addr,
		MaxAttempts:    *attempts,
		BaseBackoff:    *backoff,
		HedgeDelay:     *hedge,
		AttemptTimeout: *attemptTimeout,
	})
	if err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	verb, vargs := fs.Arg(0), fs.Args()[1:]
	var path string
	var encode func(timeoutMS int64) ([]byte, error)
	switch verb {
	case "eval":
		path, encode, err = remoteEval(vargs)
	case "worstperm":
		path, encode, err = remoteWorstPerm(vargs)
	case "design":
		path, encode, err = remoteDesign(vargs)
	case "pareto":
		path, encode, err = remotePareto(vargs)
	default:
		fs.Usage()
		os.Exit(exitUsage)
	}
	if err != nil {
		return err
	}

	payload, meta, err := c.Raw(ctx, path, encode)
	if err != nil {
		return fmt.Errorf("remote %s (after %d attempt(s)): %w", verb, meta.Attempts, err)
	}
	if meta.IsDegraded() {
		fmt.Fprintf(os.Stderr,
			"tcr remote: DEGRADED (%s): daemon served stale artifact %.16s, %ds old: %s\n",
			meta.Degraded, meta.FallbackFingerprint, meta.StalenessSec, meta.Fallback)
	}
	if meta.Attempts > 1 || meta.Hedged {
		fmt.Fprintf(os.Stderr, "tcr remote: succeeded after %d attempt(s) (hedged: %v)\n",
			meta.Attempts, meta.Hedged)
	}
	return emit(payload)
}

// Each verb builder parses its flags into the daemon's wire request. The
// timeout_ms budget is filled in per attempt by the client so retries
// carry the shrunken remainder, which is why these return encoders rather
// than byte slices.

func remoteEval(args []string) (string, func(int64) ([]byte, error), error) {
	fs := flag.NewFlagSet("remote eval", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	alg := fs.String("alg", "DOR", "algorithm name")
	samples := fs.Int("samples", 0, "average-case sample count (0 to skip)")
	seed := fs.Int64("seed", 0, "sample seed (requires -samples)")
	if err := fs.Parse(args); err != nil {
		return "", nil, err
	}
	req := store.EvalRequest{K: *k, Alg: *alg, Samples: *samples, Seed: *seed}
	return "/v1/eval", func(tms int64) ([]byte, error) {
		return json.Marshal(struct {
			store.EvalRequest
			TimeoutMS int64 `json:"timeout_ms,omitempty"`
		}{req, tms})
	}, nil
}

func remoteWorstPerm(args []string) (string, func(int64) ([]byte, error), error) {
	fs := flag.NewFlagSet("remote worstperm", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	alg := fs.String("alg", "DOR", "algorithm name")
	if err := fs.Parse(args); err != nil {
		return "", nil, err
	}
	req := store.WorstPermRequest{K: *k, Alg: *alg}
	return "/v1/worstperm", func(tms int64) ([]byte, error) {
		return json.Marshal(struct {
			store.WorstPermRequest
			TimeoutMS int64 `json:"timeout_ms,omitempty"`
		}{req, tms})
	}, nil
}

func remoteDesign(args []string) (string, func(int64) ([]byte, error), error) {
	fs := flag.NewFlagSet("remote design", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	topoSpec := fs.String("topo", "", `explicit topology "family:spec"; overrides -k`)
	kind := fs.String("kind", store.DesignMinLocality, "wcopt|minloc")
	hnorm := fs.Float64("hnorm", 0, "locality budget for wcopt (0 = unconstrained)")
	rounds := fs.Int("rounds", 0, "cutting-plane round budget (0 = daemon default)")
	if err := fs.Parse(args); err != nil {
		return "", nil, err
	}
	req := store.DesignRequest{Kind: *kind, HNorm: *hnorm}
	if *topoSpec != "" {
		req.Topology = *topoSpec
	} else {
		req.K = *k
	}
	maxRounds := *rounds
	return "/v1/design", func(tms int64) ([]byte, error) {
		return json.Marshal(struct {
			store.DesignRequest
			MaxRounds int   `json:"max_rounds,omitempty"`
			TimeoutMS int64 `json:"timeout_ms,omitempty"`
		}{req, maxRounds, tms})
	}, nil
}

func remotePareto(args []string) (string, func(int64) ([]byte, error), error) {
	fs := flag.NewFlagSet("remote pareto", flag.ExitOnError)
	k := fs.Int("k", 6, "torus radix")
	hmin := fs.Float64("hmin", 1.0, "lowest locality target")
	hmax := fs.Float64("hmax", 2.0, "highest locality target")
	points := fs.Int("points", 11, "sweep points")
	rounds := fs.Int("rounds", 0, "per-point round budget (0 = daemon default)")
	if err := fs.Parse(args); err != nil {
		return "", nil, err
	}
	req := store.ParetoRequest{K: *k, HMin: *hmin, HMax: *hmax, Points: *points}
	maxRounds := *rounds
	return "/v1/pareto", func(tms int64) ([]byte, error) {
		return json.Marshal(struct {
			store.ParetoRequest
			MaxRounds int   `json:"max_rounds,omitempty"`
			TimeoutMS int64 `json:"timeout_ms,omitempty"`
		}{req, maxRounds, tms})
	}, nil
}
