package main

// tcr observe streams flow samples into a running tcrd daemon's online
// design loop: NDJSON lines ({"src":i,"dst":j,"count":c}, count optional)
// read from a file or stdin, batched into /v1/observe requests under one
// tenant. Each batch's controller decision is reported on stderr as it
// lands — drift, operating point, and any re-solve trip — and the final
// batch's response is emitted as JSON on stdout so pipelines can gate on
// the loop's state.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"tcr/internal/client"
	"tcr/internal/online"
)

func cmdObserve(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("observe", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7421", "tcrd base URL")
	tenant := fs.String("tenant", "default", "tenant the samples belong to")
	in := fs.String("in", "-", `NDJSON sample file ("-" = stdin)`)
	batch := fs.Int("batch", client.DefaultObserveBatch, "samples per request")
	attempts := fs.Int("attempts", 4, "attempts per batch (retries on 429/5xx and transport errors)")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "base retry backoff, doubled per retry and jittered; Retry-After floors it")
	timeout := fs.Duration("timeout", 0, "overall budget for the whole stream (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		//lint:ignore errdrop read-only file, close error carries no data loss
		defer f.Close()
		r = f
	}
	c, err := client.New(client.Config{
		BaseURL:     *addr,
		MaxAttempts: *attempts,
		BaseBackoff: *backoff,
	})
	if err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Stream: fill one batch from the input, ship it, repeat — the whole
	// sample file never has to fit in memory.
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	buf := make([]online.Sample, 0, *batch)
	var last *client.ObserveResult
	batches, total := 0, 0
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		results, meta, err := c.Observe(ctx, *tenant, buf, *batch)
		if err != nil {
			return fmt.Errorf("observe (after %d attempt(s)): %w", meta.Attempts, err)
		}
		for i := range results {
			res := results[i]
			batches++
			total += res.Accepted
			fmt.Fprintf(os.Stderr, "tcr observe: batch %d: accepted=%d rejected=%d drift=%.3f target_hnorm=%g trip=%v resolving=%v\n",
				batches, res.Accepted, res.Rejected, res.Drift, res.TargetHNorm, res.Trip, res.Resolving)
			last = &res
		}
		buf = buf[:0]
		return nil
	}
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var smp online.Sample
		if err := json.Unmarshal(raw, &smp); err != nil {
			return fmt.Errorf("%s:%d: malformed sample: %w", *in, line, err)
		}
		buf = append(buf, smp)
		if len(buf) >= *batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	if last == nil {
		return fmt.Errorf("no samples in %s", *in)
	}
	fmt.Fprintf(os.Stderr, "tcr observe: %d sample(s) in %d batch(es) accepted\n", total, batches)
	out, err := json.Marshal(last)
	if err != nil {
		return err
	}
	return emit(append(out, '\n'))
}
