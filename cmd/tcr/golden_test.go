package main

import (
	"context"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything fn printed. The subcommands write their tabular output to
// stdout, so this is how the golden tests observe them.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	ferr := fn()
	if cerr := w.Close(); cerr != nil {
		t.Error(cerr)
	}
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("subcommand failed: %v", ferr)
	}
	return string(out)
}

// checkGolden compares got against testdata/<name> and rewrites the file
// when the -update flag is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./cmd/tcr -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestEvalGolden pins the closed-form metrics table for a 4-ary 2-cube.
// samples=0 skips the randomized average-case column, so the output is
// fully deterministic.
func TestEvalGolden(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdEval(context.Background(), []string{"-k", "4", "-samples", "0"})
	})
	checkGolden(t, "eval_k4.golden", out)
}

// TestLoadmapGolden pins the ASCII channel-load heat map for DOR under
// tornado traffic on a 4-ary 2-cube.
func TestLoadmapGolden(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdLoadMap([]string{"-k", "4", "-alg", "DOR", "-pattern", "tornado"})
	})
	checkGolden(t, "loadmap_k4_dor_tornado.golden", out)
}

// TestWorstPermGolden pins the adversarial-permutation report for DOR.
// The Hungarian oracle is deterministic on a fixed load matrix, so both
// the header and the permutation rows must stay byte-identical.
func TestWorstPermGolden(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdWorstPerm(context.Background(), []string{"-k", "4", "-alg", "DOR"})
	})
	checkGolden(t, "worstperm_k4_dor.golden", out)
}

// TestSubcommandBadFlags checks that flag-level validation surfaces as
// errors rather than panics.
func TestSubcommandBadFlags(t *testing.T) {
	if err := cmdEval(context.Background(), []string{"-k", "1", "-samples", "0"}); err == nil {
		t.Error("eval accepted radix 1")
	}
	if err := cmdLoadMap([]string{"-k", "4", "-alg", "nope"}); err == nil {
		t.Error("loadmap accepted an unknown algorithm")
	}
	if err := cmdLoadMap([]string{"-k", "3", "-pattern", "bitrev"}); err == nil {
		t.Error("loadmap accepted bitrev on a non-power-of-two node count")
	}
}
