package main

import (
	"math"
	"testing"
)

func TestSweep(t *testing.T) {
	got := sweep(1, 2, 5)
	want := []float64{1, 1.25, 1.5, 1.75, 2}
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("sweep[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if one := sweep(1, 2, 1); len(one) != 1 || one[0] != 2 {
		t.Fatalf("degenerate sweep = %v", one)
	}
}

func TestAlgByName(t *testing.T) {
	for _, name := range []string{"DOR", "VAL", "IVAL", "ROMM", "RLB", "RLBth", "O1TURN", "GOALish"} {
		if _, ok := algByName(name); !ok {
			t.Errorf("missing algorithm %q", name)
		}
	}
	if _, ok := algByName("nope"); ok {
		t.Error("unknown algorithm accepted")
	}
}

func TestClosedFormsList(t *testing.T) {
	algs := closedForms()
	if len(algs) != 6 {
		t.Fatalf("expected the six Table-1 algorithms, got %d", len(algs))
	}
	seen := map[string]bool{}
	for _, a := range algs {
		if seen[a.Name()] {
			t.Fatalf("duplicate algorithm %s", a.Name())
		}
		seen[a.Name()] = true
	}
}
