// Command tcr regenerates the paper's evaluation (Towles, Dally, Boyd,
// "Throughput-Centric Routing Algorithm Design", SPAA'03) as TSV tables.
//
// Subcommands:
//
//	eval     metrics for every closed-form algorithm (points of Figures 1 & 6)
//	figure1  worst-case throughput vs locality Pareto curve (Figure 1)
//	figure4  locality vs radix for optimal / IVAL / 2TURN (Figure 4)
//	figure5  interpolated algorithms DOR<->IVAL and DOR<->2TURN (Figure 5)
//	figure6  average-case throughput vs locality (Figure 6, incl. 2TURNA)
//	approx   average-case approximation quality (Section 3.3)
//	sim      flit-level simulation (Section 2.1's ideal-vs-practical gap)
//
// All throughputs print as fractions of network capacity; locality prints
// normalized to the mean minimal path length, matching the paper's axes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"tcr"
	"tcr/internal/design"
	"tcr/internal/lp"
	"tcr/internal/serve"
	"tcr/internal/sim"
	"tcr/internal/store"
	"tcr/internal/traffic"
)

// Exit codes, so scripts driving tcr can tell failure classes apart.
const (
	exitErr         = 1 // generic failure
	exitUsage       = 2 // bad command line
	exitNumerical   = 3 // LP numerical failure that survived the recovery ladder
	exitUncertified = 4 // budgets ran out before the oracle certified optimality
	exitCanceled    = 5 // interrupted, or the deadline expired
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(exitUsage)
	}
	// Ctrl-C cancels the context, which unwinds LP sweeps and simulations
	// between rounds; a second Ctrl-C kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "eval":
		err = cmdEval(ctx, args)
	case "figure1":
		err = cmdFigure1(ctx, args)
	case "figure4":
		err = cmdFigure4(ctx, args)
	case "figure5":
		err = cmdFigure5(ctx, args)
	case "figure6":
		err = cmdFigure6(ctx, args)
	case "approx":
		err = cmdApprox(ctx, args)
	case "sim":
		err = cmdSim(ctx, args)
	case "worstperm":
		err = cmdWorstPerm(ctx, args)
	case "design":
		err = cmdDesign(ctx, args)
	case "loadmap":
		err = cmdLoadMap(args)
	case "remote":
		err = cmdRemote(ctx, args)
	case "observe":
		err = cmdObserve(ctx, args)
	default:
		usage()
		os.Exit(exitUsage)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcr:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode classifies a failure for the shell; a numerical failure also
// prints the solver's recovery-ladder post-mortem, which is otherwise lost
// with the solve.
func exitCode(err error) int {
	var de *lp.DiagError
	if errors.As(err, &de) {
		fmt.Fprintln(os.Stderr, "tcr: solver diagnostics:", de.Diag.Summary())
	}
	switch {
	case errors.Is(err, lp.ErrNumerical):
		return exitNumerical
	case errors.Is(err, design.ErrUncertified):
		return exitUncertified
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return exitCanceled
	}
	return exitErr
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tcr <eval|figure1|figure4|figure5|figure6|approx|sim|worstperm|design|loadmap|remote|observe> [flags]
run "tcr <subcommand> -h" for flags`)
}

// newTorus validates a flag-supplied radix before constructing the
// topology, so bad CLI input surfaces as an error instead of a panic.
func newTorus(k int) (*tcr.Torus, error) {
	if k < 2 {
		return nil, fmt.Errorf("radix %d out of range (need k >= 2)", k)
	}
	return tcr.NewTorus(k), nil
}

// closedForms returns the paper's Table 1 algorithms plus IVAL.
func closedForms() []tcr.Algorithm {
	return []tcr.Algorithm{
		tcr.DOR(), tcr.ROMM(), tcr.RLB(), tcr.RLBth(), tcr.VAL(), tcr.IVAL(),
	}
}

func cmdEval(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	nSamples := fs.Int("samples", 100, "average-case sample count (0 to skip)")
	seed := fs.Int64("seed", 1, "sample seed")
	asJSON := fs.Bool("json", false, "emit one artifact JSON line per algorithm (the tcrd schema) instead of the TSV table")
	storeDir := fs.String("store", "", "artifact store directory: replay stored results, persist fresh ones")
	if err := fs.Parse(args); err != nil {
		return err
	}

	t, err := newTorus(*k)
	if err != nil {
		return err
	}
	if *asJSON {
		return evalJSON(ctx, *k, *nSamples, *seed, *storeDir)
	}
	var samples []*tcr.Traffic
	if *nSamples > 0 {
		samples = tcr.SampleTraffic(t, *nSamples, *seed)
	}
	fmt.Printf("# %d-ary 2-cube, capacity %.4f injection fraction\n", *k, tcr.NetworkCapacity(t))
	fmt.Println("alg\tHnorm\twc_frac\tavg_frac\tcap_frac")
	for _, alg := range closedForms() {
		m, err := tcr.ReportCtx(ctx, t, alg, samples)
		if err != nil {
			return err
		}
		fmt.Printf("%s\t%.4f\t%.4f\t%.4f\t%.4f\n",
			alg.Name(), m.HNorm, m.WorstCaseFraction, m.AvgCaseFraction, m.CapacityFraction)
	}
	return nil
}

// evalJSON emits NDJSON: one canonical EvalArtifact per closed-form
// algorithm, byte-identical to what POST /v1/eval serves for the same
// request, optionally replayed from / persisted to an artifact store.
func evalJSON(ctx context.Context, k, nSamples int, seed int64, storeDir string) error {
	st, err := openStore(storeDir)
	if err != nil {
		return err
	}
	for _, alg := range closedForms() {
		req := store.EvalRequest{K: k, Alg: alg.Name(), Samples: nSamples}
		if nSamples > 0 {
			req.Seed = seed
		}
		fp, err := req.Fingerprint()
		if err != nil {
			return err
		}
		b, err := artifactBytes(st, store.KindEval, fp, func() (any, bool, error) {
			art, err := serve.ComputeEval(ctx, req, nil, tcr.Concurrency)
			return art, err == nil, err
		})
		if err != nil {
			return err
		}
		if err := emit(b); err != nil {
			return err
		}
	}
	return nil
}

func cmdFigure1(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("figure1", flag.ExitOnError)
	k := fs.Int("k", 6, "torus radix (k=8 reproduces the paper but needs hours of LP time)")
	points := fs.Int("points", 11, "Pareto sweep points")
	with2turn := fs.Bool("with2turn", false, "also design and plot the 2TURN point (slow)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	t, err := newTorus(*k)
	if err != nil {
		return err
	}
	fmt.Println("# optimal tradeoff curve: best worst-case throughput at locality <= L")
	fmt.Println("Lnorm\twc_frac_optimal")
	hs := sweep(1.0, 2.0, *points)
	pts, err := tcr.WorstCaseParetoCurveCtx(ctx, t, hs, tcr.DesignOptions{})
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("%.4f\t%.4f\n", p.HNorm, p.Theta)
	}
	fmt.Println("\n# algorithm points (Hnorm, wc_frac)")
	fmt.Println("alg\tHnorm\twc_frac")
	for _, alg := range closedForms() {
		m, err := tcr.ReportCtx(ctx, t, alg, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%s\t%.4f\t%.4f\n", alg.Name(), m.HNorm, m.WorstCaseFraction)
	}
	if *with2turn {
		tt, err := tcr.Design2TurnCtx(ctx, t, tcr.DesignOptions{})
		if err != nil {
			return err
		}
		m, err := tcr.ReportCtx(ctx, t, tt.Table, nil)
		if err != nil {
			return err
		}
		fmt.Printf("2TURN\t%.4f\t%.4f\n", m.HNorm, m.WorstCaseFraction)
	}
	return nil
}

func cmdFigure4(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("figure4", flag.ExitOnError)
	kmin := fs.Int("kmin", 3, "smallest radix")
	kmax := fs.Int("kmax", 5, "largest radix (>=6 needs minutes per radix)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Println("# locality (normalized) at maximum worst-case throughput")
	fmt.Println("k\toptimal\tIVAL\t2TURN")
	for k := *kmin; k <= *kmax; k++ {
		t, err := newTorus(k)
		if err != nil {
			return err
		}
		opt, err := tcr.OptimalLocalityAtMaxWorstCaseCtx(ctx, t, tcr.DesignOptions{})
		if err != nil {
			return fmt.Errorf("k=%d optimal: %w", k, err)
		}
		ival, err := tcr.ReportCtx(ctx, t, tcr.IVAL(), nil)
		if err != nil {
			return err
		}
		tt, err := tcr.Design2TurnCtx(ctx, t, tcr.DesignOptions{})
		if err != nil {
			return fmt.Errorf("k=%d 2TURN: %w", k, err)
		}
		fmt.Printf("%d\t%.4f\t%.4f\t%.4f\n", k, opt.HNorm, ival.HNorm, tt.HNorm)
	}
	return nil
}

func cmdFigure5(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("figure5", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	points := fs.Int("points", 11, "alpha sweep points")
	with2turn := fs.Bool("with2turn", false, "also interpolate DOR<->2TURN (requires the slow LP design)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	t, err := newTorus(*k)
	if err != nil {
		return err
	}
	var ttAlg tcr.Algorithm
	if *with2turn {
		tt, err := tcr.Design2TurnCtx(ctx, t, tcr.DesignOptions{})
		if err != nil {
			return err
		}
		ttAlg = tt.Table
	}
	fmt.Println("# interpolated algorithms: alpha from DOR (0) to the non-minimal algorithm (1)")
	if ttAlg != nil {
		fmt.Println("alpha\tH_DOR-IVAL\twc_DOR-IVAL\tH_DOR-2TURN\twc_DOR-2TURN")
	} else {
		fmt.Println("alpha\tH_DOR-IVAL\twc_DOR-IVAL")
	}
	for i := 0; i < *points; i++ {
		alpha := float64(i) / float64(*points-1)
		a, err := tcr.ReportCtx(ctx, t, tcr.Interpolate(tcr.IVAL(), tcr.DOR(), alpha), nil)
		if err != nil {
			return err
		}
		if ttAlg != nil {
			b, err := tcr.ReportCtx(ctx, t, tcr.Interpolate(ttAlg, tcr.DOR(), alpha), nil)
			if err != nil {
				return err
			}
			fmt.Printf("%.2f\t%.4f\t%.4f\t%.4f\t%.4f\n",
				alpha, a.HNorm, a.WorstCaseFraction, b.HNorm, b.WorstCaseFraction)
		} else {
			fmt.Printf("%.2f\t%.4f\t%.4f\n", alpha, a.HNorm, a.WorstCaseFraction)
		}
	}
	return nil
}

func cmdFigure6(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("figure6", flag.ExitOnError)
	k := fs.Int("k", 5, "torus radix (k=8 with 100 samples needs hours of LP time)")
	nSamples := fs.Int("samples", 40, "average-case sample count")
	seed := fs.Int64("seed", 1, "sample seed")
	points := fs.Int("points", 9, "Pareto sweep points")
	with2turn := fs.Bool("with2turn", true, "design and plot 2TURN/2TURNA points")
	if err := fs.Parse(args); err != nil {
		return err
	}

	t, err := newTorus(*k)
	if err != nil {
		return err
	}
	samples := tcr.SampleTraffic(t, *nSamples, *seed)

	fmt.Println("# optimal tradeoff: best avg-case throughput (approx) at locality <= L")
	fmt.Println("Lnorm\tavg_frac_optimal")
	pts, err := tcr.AvgCaseParetoCurveCtx(ctx, t, samples, sweep(1.0, 2.0, *points), tcr.DesignOptions{})
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("%.4f\t%.4f\n", p.HNorm, p.Theta)
	}

	fmt.Println("\n# algorithm points (Hnorm, avg_frac)")
	fmt.Println("alg\tHnorm\tavg_frac")
	for _, alg := range closedForms() {
		m, err := tcr.ReportCtx(ctx, t, alg, samples)
		if err != nil {
			return err
		}
		fmt.Printf("%s\t%.4f\t%.4f\n", alg.Name(), m.HNorm, m.AvgCaseFraction)
	}
	if *with2turn {
		tt, err := tcr.Design2TurnCtx(ctx, t, tcr.DesignOptions{})
		if err != nil {
			return err
		}
		m, err := tcr.ReportCtx(ctx, t, tt.Table, samples)
		if err != nil {
			return err
		}
		fmt.Printf("2TURN\t%.4f\t%.4f\n", m.HNorm, m.AvgCaseFraction)
		tta, err := tcr.Design2TurnACtx(ctx, t, samples, tcr.DesignOptions{})
		if err != nil {
			return err
		}
		m, err = tcr.ReportCtx(ctx, t, tta.Table, samples)
		if err != nil {
			return err
		}
		fmt.Printf("2TURNA\t%.4f\t%.4f\n", m.HNorm, m.AvgCaseFraction)
	}
	return nil
}

func cmdApprox(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("approx", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	nSamples := fs.Int("samples", 100, "sample count")
	seed := fs.Int64("seed", 1, "sample seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	t, err := newTorus(*k)
	if err != nil {
		return err
	}
	samples := tcr.SampleTraffic(t, *nSamples, *seed)
	fmt.Printf("# Section 3.3 approximation check, |X|=%d, N=%d\n", *nSamples, t.N)
	fmt.Println("alg\tapprox_thpt\texact_mean_thpt\trel_err_pct")
	for _, alg := range closedForms() {
		f, err := tcr.EvaluateCtx(ctx, t, alg)
		if err != nil {
			return err
		}
		r := f.AvgCase(samples)
		rel := 100 * (r.ExactMeanThroughput - r.ApproxThroughput) / r.ExactMeanThroughput
		fmt.Printf("%s\t%.4f\t%.4f\t%.2f\n",
			alg.Name(), r.ApproxThroughput, r.ExactMeanThroughput, rel)
	}
	return nil
}

func cmdSim(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	algName := fs.String("alg", "IVAL", "DOR|VAL|IVAL|ROMM|RLB|RLBth|O1TURN")
	pattern := fs.String("pattern", "uniform", "uniform|tornado|transpose|complement|neighbor|bitrev|shuffle")
	rate := fs.Float64("rate", 0.0, "offered load in flits/node/cycle; 0 = sweep")
	warmup := fs.Int("warmup", 3000, "warmup cycles")
	measure := fs.Int("measure", 10000, "measurement cycles")
	vcs := fs.Int("vcs", 2, "virtual channels per deadlock class")
	buf := fs.Int("buf", 8, "flit buffer depth per VC")
	seed := fs.Int64("seed", 1, "rng seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	t, err := newTorus(*k)
	if err != nil {
		return err
	}
	alg, ok := algByName(*algName)
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algName)
	}
	pat, ok := traffic.Named(t, *pattern)
	if !ok {
		return fmt.Errorf("pattern %q unavailable on k=%d", *pattern, *k)
	}

	// Ideal saturation for context: min(1, capacity under this pattern).
	f, err := tcr.EvaluateCtx(ctx, t, alg)
	if err != nil {
		return err
	}
	ideal := f.Throughput(pat)
	if ideal > 1 {
		ideal = 1
	}
	fmt.Printf("# %s on %d-ary 2-cube, %s traffic; ideal saturation %.4f flits/node/cycle\n",
		*algName, *k, *pattern, ideal)
	fmt.Println("rate\tthroughput\tavg_latency\tfrac_of_ideal\tdeadlock")

	rates := []float64{*rate}
	if *rate <= 0 {
		rates = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	for _, r := range rates {
		st, err := tcr.SimulateCtx(ctx, sim.Config{
			K: *k, Rate: r, Seed: *seed, Alg: alg, Pattern: pat,
			VCsPerClass: *vcs, BufDepth: *buf,
			Warmup: *warmup, Measure: *measure,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%.2f\t%.4f\t%.1f\t%.3f\t%v\n",
			r, st.Throughput, st.AvgLatency, st.Throughput/ideal, st.Deadlocked)
	}
	return nil
}

// sweep returns n evenly spaced values in [lo, hi].
func sweep(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{hi}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}
