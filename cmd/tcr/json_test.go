package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tcr/internal/serve"
	"tcr/internal/store"
)

// These tests pin the -json contract: the CLI emits exactly the bytes the
// tcrd daemon serves for the equivalent request, and the two producers share
// artifact slots when pointed at one store.

func daemonFor(t *testing.T, storeDir string) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	})
	return ts
}

func daemonPost(t *testing.T, ts *httptest.Server, path, body string) []byte {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d, body %s", path, resp.StatusCode, b)
	}
	return b
}

// TestLegacyFingerprintParity pins the content addresses of the radix-form
// requests from before the topology field existed. The explicit Topology
// field is omitempty and the empty string never encodes, so legacy requests
// must keep fingerprinting to the exact same hashes — otherwise every
// pre-existing store artifact and checkpoint would be orphaned.
func TestLegacyFingerprintParity(t *testing.T) {
	cases := []struct {
		name string
		req  interface{ Fingerprint() (string, error) }
		want string
	}{
		{"eval-k4-DOR", store.EvalRequest{K: 4, Alg: "DOR"},
			"f5fe4908536684f3a52b3d95730010d591c450bc756205c7408b6264941c8c29"},
		{"design-k4-minloc", store.DesignRequest{K: 4, Kind: store.DesignMinLocality},
			"bc8a32a647d5a65e0aa64b2fd804c5be7f89a74b1af12e3f45ce7ec0e726da49"},
		{"design-k6-minloc", store.DesignRequest{K: 6, Kind: store.DesignMinLocality},
			"27c4adb25711c7c399f202116c6432e76df1d49d3cf067aec61f9f31e7ed3f62"},
	}
	for _, c := range cases {
		fp, err := c.req.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if fp != c.want {
			t.Errorf("%s: fingerprint %s, want %s (legacy store artifacts orphaned)", c.name, fp, c.want)
		}
	}
	// The canonical bytes themselves must be unchanged: no topology key may
	// appear in a radix-form encoding.
	b, err := json.Marshal(store.EvalRequest{K: 4, Alg: "DOR"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(b), `{"k":4,"alg":"DOR"}`; got != want {
		t.Errorf("legacy eval request encodes as %s, want %s", got, want)
	}
	if b, err = json.Marshal(store.DesignRequest{K: 4, Kind: store.DesignMinLocality}); err != nil {
		t.Fatal(err)
	}
	if got, want := string(b), `{"k":4,"kind":"minloc"}`; got != want {
		t.Errorf("legacy design request encodes as %s, want %s", got, want)
	}
}

// TestTopologyRequestValidation pins the shape rules of the explicit
// topology form: family:spec travels alone (K must be zero), and the two
// forms can never alias one fingerprint.
func TestTopologyRequestValidation(t *testing.T) {
	ok := store.DesignRequest{Topology: "mesh:4x4", Kind: store.DesignWorstCase}
	if err := ok.Validate(); err != nil {
		t.Fatalf("explicit topology rejected: %v", err)
	}
	if err := (store.EvalRequest{Topology: "torus3d:4", Alg: "DOR"}).Validate(); err != nil {
		t.Fatalf("explicit eval topology rejected: %v", err)
	}
	bad := []struct {
		name string
		req  interface{ Validate() error }
	}{
		{"k-and-topology", store.DesignRequest{K: 4, Topology: "mesh:4x4", Kind: store.DesignWorstCase}},
		{"missing-spec", store.DesignRequest{Topology: "mesh", Kind: store.DesignWorstCase}},
		{"empty-family", store.DesignRequest{Topology: ":4x4", Kind: store.DesignWorstCase}},
		{"neither", store.DesignRequest{Kind: store.DesignWorstCase}},
		{"eval-k-and-topology", store.EvalRequest{K: 4, Topology: "mesh:4x4", Alg: "DOR"}},
	}
	for _, c := range bad {
		if err := c.req.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Same request, two spellings, distinct addresses: the torus2d explicit
	// form must not silently collide with (or diverge from) a radix form —
	// producers canonicalize to the radix form before fingerprinting.
	legacy, err := store.DesignRequest{K: 4, Kind: store.DesignMinLocality}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := store.DesignRequest{Topology: "torus2d:4", Kind: store.DesignMinLocality}.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if legacy == explicit {
		t.Fatal("radix and explicit torus2d forms fingerprint identically; canonicalization is load-bearing")
	}
}

// TestEvalJSONMatchesDaemon: every line of `tcr eval -json` must be
// byte-identical to the daemon's /v1/eval response for the same request.
func TestEvalJSONMatchesDaemon(t *testing.T) {
	ts := daemonFor(t, t.TempDir())
	out := captureStdout(t, func() error {
		return cmdEval(context.Background(), []string{"-k", "4", "-samples", "0", "-json"})
	})
	lines := strings.SplitAfter(out, "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	algs := closedForms()
	if len(lines) != len(algs) {
		t.Fatalf("%d NDJSON lines for %d algorithms", len(lines), len(algs))
	}
	for i, alg := range algs {
		want := daemonPost(t, ts, "/v1/eval", `{"k":4,"alg":"`+alg.Name()+`"}`)
		if lines[i] != string(want) {
			t.Errorf("%s: CLI line differs from daemon body\ncli:    %sdaemon: %s", alg.Name(), lines[i], want)
		}
	}
}

// TestWorstPermJSONMatchesDaemon pins the same parity for the worst-case
// certificate, including the permutation bytes.
func TestWorstPermJSONMatchesDaemon(t *testing.T) {
	ts := daemonFor(t, t.TempDir())
	out := captureStdout(t, func() error {
		return cmdWorstPerm(context.Background(), []string{"-k", "4", "-alg", "DOR", "-json"})
	})
	want := daemonPost(t, ts, "/v1/worstperm", `{"k":4,"alg":"DOR"}`)
	if out != string(want) {
		t.Fatalf("CLI artifact differs from daemon body\ncli:    %sdaemon: %s", out, want)
	}
}

// TestEvalJSONStoreReplay: a second -json -store run replays the stored
// artifacts byte-for-byte instead of recomputing.
func TestEvalJSONStoreReplay(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-k", "4", "-samples", "0", "-json", "-store", dir}
	first := captureStdout(t, func() error { return cmdEval(context.Background(), args) })
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fps, err := st.List(store.KindEval)
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != len(closedForms()) {
		t.Fatalf("store holds %d eval artifacts, want %d", len(fps), len(closedForms()))
	}
	second := captureStdout(t, func() error { return cmdEval(context.Background(), args) })
	if first != second {
		t.Fatal("store replay differs from the original computation")
	}
}

// TestDesignStoreSharedWithDaemon: `tcr design -kind wcopt -store` persists
// under the store kind "minloc" (wcopt runs the lexicographic
// MinLocalityAtWorstCase), and a daemon over the same store replays that
// exact artifact for POST /v1/design {"kind":"minloc"}.
func TestDesignStoreSharedWithDaemon(t *testing.T) {
	dir := t.TempDir()
	tableJSON := captureStdout(t, func() error {
		return cmdDesign(context.Background(), []string{"-k", "4", "-kind", "wcopt", "-store", dir})
	})
	if !strings.Contains(tableJSON, "wc-opt") {
		t.Fatalf("design did not emit a routing table: %.80s", tableJSON)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := store.DesignRequest{K: 4, Kind: store.DesignMinLocality}
	fp, err := req.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	stored, _, err := st.Get(store.KindDesign, fp)
	if err != nil {
		t.Fatalf("CLI design not in the store under kind minloc: %v", err)
	}

	ts := daemonFor(t, dir)
	body := daemonPost(t, ts, "/v1/design", `{"k":4,"kind":"minloc"}`)
	if string(body) != string(stored) {
		t.Fatal("daemon served different bytes than the CLI persisted")
	}

	// The replay path also rebuilds the executable table: a second CLI run
	// must reproduce the decomposed table without re-solving.
	replayed := captureStdout(t, func() error {
		return cmdDesign(context.Background(), []string{"-k", "4", "-kind", "wcopt", "-store", dir})
	})
	if replayed != tableJSON {
		t.Fatal("replayed design decomposes to a different table")
	}
}
