package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tcr/internal/serve"
	"tcr/internal/store"
)

// These tests pin the -json contract: the CLI emits exactly the bytes the
// tcrd daemon serves for the equivalent request, and the two producers share
// artifact slots when pointed at one store.

func daemonFor(t *testing.T, storeDir string) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	})
	return ts
}

func daemonPost(t *testing.T, ts *httptest.Server, path, body string) []byte {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d, body %s", path, resp.StatusCode, b)
	}
	return b
}

// TestEvalJSONMatchesDaemon: every line of `tcr eval -json` must be
// byte-identical to the daemon's /v1/eval response for the same request.
func TestEvalJSONMatchesDaemon(t *testing.T) {
	ts := daemonFor(t, t.TempDir())
	out := captureStdout(t, func() error {
		return cmdEval(context.Background(), []string{"-k", "4", "-samples", "0", "-json"})
	})
	lines := strings.SplitAfter(out, "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	algs := closedForms()
	if len(lines) != len(algs) {
		t.Fatalf("%d NDJSON lines for %d algorithms", len(lines), len(algs))
	}
	for i, alg := range algs {
		want := daemonPost(t, ts, "/v1/eval", `{"k":4,"alg":"`+alg.Name()+`"}`)
		if lines[i] != string(want) {
			t.Errorf("%s: CLI line differs from daemon body\ncli:    %sdaemon: %s", alg.Name(), lines[i], want)
		}
	}
}

// TestWorstPermJSONMatchesDaemon pins the same parity for the worst-case
// certificate, including the permutation bytes.
func TestWorstPermJSONMatchesDaemon(t *testing.T) {
	ts := daemonFor(t, t.TempDir())
	out := captureStdout(t, func() error {
		return cmdWorstPerm(context.Background(), []string{"-k", "4", "-alg", "DOR", "-json"})
	})
	want := daemonPost(t, ts, "/v1/worstperm", `{"k":4,"alg":"DOR"}`)
	if out != string(want) {
		t.Fatalf("CLI artifact differs from daemon body\ncli:    %sdaemon: %s", out, want)
	}
}

// TestEvalJSONStoreReplay: a second -json -store run replays the stored
// artifacts byte-for-byte instead of recomputing.
func TestEvalJSONStoreReplay(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-k", "4", "-samples", "0", "-json", "-store", dir}
	first := captureStdout(t, func() error { return cmdEval(context.Background(), args) })
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fps, err := st.List(store.KindEval)
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != len(closedForms()) {
		t.Fatalf("store holds %d eval artifacts, want %d", len(fps), len(closedForms()))
	}
	second := captureStdout(t, func() error { return cmdEval(context.Background(), args) })
	if first != second {
		t.Fatal("store replay differs from the original computation")
	}
}

// TestDesignStoreSharedWithDaemon: `tcr design -kind wcopt -store` persists
// under the store kind "minloc" (wcopt runs the lexicographic
// MinLocalityAtWorstCase), and a daemon over the same store replays that
// exact artifact for POST /v1/design {"kind":"minloc"}.
func TestDesignStoreSharedWithDaemon(t *testing.T) {
	dir := t.TempDir()
	tableJSON := captureStdout(t, func() error {
		return cmdDesign(context.Background(), []string{"-k", "4", "-kind", "wcopt", "-store", dir})
	})
	if !strings.Contains(tableJSON, "wc-opt") {
		t.Fatalf("design did not emit a routing table: %.80s", tableJSON)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := store.DesignRequest{K: 4, Kind: store.DesignMinLocality}
	fp, err := req.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	stored, _, err := st.Get(store.KindDesign, fp)
	if err != nil {
		t.Fatalf("CLI design not in the store under kind minloc: %v", err)
	}

	ts := daemonFor(t, dir)
	body := daemonPost(t, ts, "/v1/design", `{"k":4,"kind":"minloc"}`)
	if string(body) != string(stored) {
		t.Fatal("daemon served different bytes than the CLI persisted")
	}

	// The replay path also rebuilds the executable table: a second CLI run
	// must reproduce the decomposed table without re-solving.
	replayed := captureStdout(t, func() error {
		return cmdDesign(context.Background(), []string{"-k", "4", "-kind", "wcopt", "-store", dir})
	})
	if replayed != tableJSON {
		t.Fatal("replayed design decomposes to a different table")
	}
}
