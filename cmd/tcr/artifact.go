package main

import (
	"fmt"
	"os"

	"tcr/internal/store"
)

// The -json modes emit exactly the artifact schema the tcrd daemon serves
// (internal/store's schema types, serialized through store.Encode), so CLI
// output and daemon responses are byte-for-byte diffable. The optional
// -store flag points both producers at the same artifact store: whichever
// computes a result first persists it, and the other replays it.

// openStore opens the artifact store named by a -store flag; an empty flag
// means no store (compute fresh, persist nothing).
func openStore(dir string) (*store.Store, error) {
	if dir == "" {
		return nil, nil
	}
	return store.Open(dir)
}

// artifactBytes replays (kind, fp) from st when present, otherwise computes
// the artifact, encodes it canonically, and — when persist says so — commits
// it. A nil st always computes and never persists.
func artifactBytes(st *store.Store, kind, fp string, compute func() (art any, persist bool, err error)) ([]byte, error) {
	if st != nil {
		if b, _, err := st.Get(kind, fp); err == nil {
			return b, nil
		}
	}
	art, persist, err := compute()
	if err != nil {
		return nil, err
	}
	b, err := store.Encode(art)
	if err != nil {
		return nil, err
	}
	if st != nil && persist {
		if _, err := st.Put(kind, fp, store.SchemaVersion, b); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// emit writes one canonical artifact line to stdout.
func emit(b []byte) error {
	if _, err := os.Stdout.Write(b); err != nil {
		return fmt.Errorf("write stdout: %w", err)
	}
	return nil
}
