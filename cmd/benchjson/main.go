// Command benchjson converts `go test -bench` output into a JSON document
// mapping benchmark name to its measured figures, for checking performance
// results into the repository in a diffable form (see scripts/bench.sh).
//
// Usage:
//
//	go test -bench . -benchmem | benchjson [-o out.json] [-label suffix]
//	go test -bench . -benchmem | benchjson -diff base.json [-threshold 1.5]
//
// Input is read from stdin. Lines that are not benchmark result lines are
// ignored, so raw `go test` output can be piped in directly. With -label,
// the suffix is appended to every benchmark name (used to distinguish runs
// under different build tags). Repeated invocations with -o append into the
// existing document, so several runs can accumulate into one file.
//
// With -diff, the parsed results are instead compared against a committed
// baseline document (e.g. BENCH_lp.json): every benchmark present in both
// whose ns/op exceeds baseline*threshold is reported as a regression.
// Benchmarks present on only one side are listed but never fail the diff.
//
// Exit status is 0 on success, 1 when the input contains no benchmark
// lines, 2 on I/O or parse errors, and 3 when -diff found a regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result holds the figures of one benchmark line. Fields that the run did
// not report (e.g. allocation stats without -benchmem) stay zero.
type result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout); appended to if it exists")
	label := fs.String("label", "", "suffix appended to every benchmark name")
	diff := fs.String("diff", "", "baseline JSON document to compare against instead of emitting JSON")
	threshold := fs.Float64("threshold", 1.5, "with -diff, fail when ns/op exceeds baseline*threshold")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	results := map[string]result{}
	if *out != "" && *diff == "" {
		if err := loadExisting(*out, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
	}

	n, err := parseBench(bufio.NewScanner(os.Stdin), *label, results)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		return 1
	}

	if *diff != "" {
		return diffBase(*diff, *threshold, results)
	}

	if err := write(*out, results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	return 0
}

// diffBase compares results against the baseline document at path. Each
// benchmark present in both is judged on ns/op alone (allocation figures
// shift with compiler versions and are tracked by the checked-in JSON diff
// itself); a current time above baseline*threshold is a regression. Returns
// 0 when clean, 3 when any regression was found, 2 on a bad baseline.
func diffBase(path string, threshold float64, results map[string]result) int {
	base := map[string]result{}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		return 2
	}

	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		cur := results[name]
		b, ok := base[name]
		if !ok {
			fmt.Printf("  new      %-60s %12.0f ns/op (not in baseline)\n", name, cur.NsPerOp)
			continue
		}
		ratio := cur.NsPerOp / b.NsPerOp
		mark := "ok"
		if cur.NsPerOp > b.NsPerOp*threshold {
			mark = "REGRESS"
			regressions++
		}
		fmt.Printf("  %-8s %-60s %12.0f ns/op vs %12.0f (%.2fx)\n", mark, name, cur.NsPerOp, b.NsPerOp, ratio)
	}
	baseNames := make([]string, 0, len(base))
	for name := range base {
		baseNames = append(baseNames, name)
	}
	sort.Strings(baseNames)
	for _, name := range baseNames {
		if _, ok := results[name]; !ok {
			fmt.Printf("  missing  %-60s (in baseline, not in input)\n", name)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) above %.2fx of %s\n", regressions, threshold, path)
		return 3
	}
	fmt.Printf("benchjson: no regressions above %.2fx of %s\n", threshold, path)
	return 0
}

// loadExisting merges a previous output file into results so consecutive
// runs accumulate. A missing file is not an error.
func loadExisting(path string, results map[string]result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	return json.Unmarshal(data, &results)
}

// parseBench scans benchmark result lines of the form
//
//	BenchmarkName-8   	  20	 550045 ns/op	 167832 B/op	 1978 allocs/op
//
// into results, returning how many lines matched.
func parseBench(sc *bufio.Scanner, label string, results map[string]result) (int, error) {
	n := 0
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		name := trimProcSuffix(f[0]) + label
		r := results[name]
		r.Iterations = iters
		for i := 2; i+1 < len(f); i += 2 {
			switch f[i+1] {
			case "ns/op":
				v, err := strconv.ParseFloat(f[i], 64)
				if err != nil {
					return n, fmt.Errorf("%s: bad ns/op %q: %w", name, f[i], err)
				}
				r.NsPerOp = v
			case "B/op":
				v, err := strconv.ParseInt(f[i], 10, 64)
				if err != nil {
					return n, fmt.Errorf("%s: bad B/op %q: %w", name, f[i], err)
				}
				r.BytesPerOp = v
			case "allocs/op":
				v, err := strconv.ParseInt(f[i], 10, 64)
				if err != nil {
					return n, fmt.Errorf("%s: bad allocs/op %q: %w", name, f[i], err)
				}
				r.AllocsPerOp = v
			}
		}
		results[name] = r
		n++
	}
	return n, sc.Err()
}

// trimProcSuffix drops the trailing -GOMAXPROCS marker (e.g. "-8") that
// `go test` appends to benchmark names.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// write emits the results as sorted, indented JSON to path or stdout.
func write(path string, results map[string]result) error {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		enc, err := json.Marshal(results[name])
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "  %q: %s", name, enc)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	if path == "" {
		_, err := os.Stdout.WriteString(b.String())
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
