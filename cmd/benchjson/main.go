// Command benchjson converts `go test -bench` output into a JSON document
// mapping benchmark name to its measured figures, for checking performance
// results into the repository in a diffable form (see scripts/bench.sh).
//
// Usage:
//
//	go test -bench . -benchmem | benchjson [-o out.json] [-label suffix]
//
// Input is read from stdin. Lines that are not benchmark result lines are
// ignored, so raw `go test` output can be piped in directly. With -label,
// the suffix is appended to every benchmark name (used to distinguish runs
// under different build tags). Repeated invocations with -o append into the
// existing document, so several runs can accumulate into one file. Exit
// status is 0 on success, 1 when the input contains no benchmark lines, and
// 2 on I/O or parse errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result holds the figures of one benchmark line. Fields that the run did
// not report (e.g. allocation stats without -benchmem) stay zero.
type result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout); appended to if it exists")
	label := fs.String("label", "", "suffix appended to every benchmark name")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	results := map[string]result{}
	if *out != "" {
		if err := loadExisting(*out, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
	}

	n, err := parseBench(bufio.NewScanner(os.Stdin), *label, results)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		return 1
	}

	if err := write(*out, results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	return 0
}

// loadExisting merges a previous output file into results so consecutive
// runs accumulate. A missing file is not an error.
func loadExisting(path string, results map[string]result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	return json.Unmarshal(data, &results)
}

// parseBench scans benchmark result lines of the form
//
//	BenchmarkName-8   	  20	 550045 ns/op	 167832 B/op	 1978 allocs/op
//
// into results, returning how many lines matched.
func parseBench(sc *bufio.Scanner, label string, results map[string]result) (int, error) {
	n := 0
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		name := trimProcSuffix(f[0]) + label
		r := results[name]
		r.Iterations = iters
		for i := 2; i+1 < len(f); i += 2 {
			switch f[i+1] {
			case "ns/op":
				v, err := strconv.ParseFloat(f[i], 64)
				if err != nil {
					return n, fmt.Errorf("%s: bad ns/op %q: %w", name, f[i], err)
				}
				r.NsPerOp = v
			case "B/op":
				v, err := strconv.ParseInt(f[i], 10, 64)
				if err != nil {
					return n, fmt.Errorf("%s: bad B/op %q: %w", name, f[i], err)
				}
				r.BytesPerOp = v
			case "allocs/op":
				v, err := strconv.ParseInt(f[i], 10, 64)
				if err != nil {
					return n, fmt.Errorf("%s: bad allocs/op %q: %w", name, f[i], err)
				}
				r.AllocsPerOp = v
			}
		}
		results[name] = r
		n++
	}
	return n, sc.Err()
}

// trimProcSuffix drops the trailing -GOMAXPROCS marker (e.g. "-8") that
// `go test` appends to benchmark names.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// write emits the results as sorted, indented JSON to path or stdout.
func write(path string, results map[string]result) error {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		enc, err := json.Marshal(results[name])
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "  %q: %s", name, enc)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	if path == "" {
		_, err := os.Stdout.WriteString(b.String())
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
