package tcr

// One benchmark per figure of the paper's evaluation, plus ablation benches
// for the design choices called out in DESIGN.md. The figure benches run the
// same code paths as cmd/tcr's figure subcommands at reduced scale (smaller
// radix / sample counts) so that `go test -bench . -benchmem` terminates in
// minutes; the full-scale k=8 tables are produced by the CLI and recorded in
// EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"testing"

	"tcr/internal/design"
	"tcr/internal/eval"
	"tcr/internal/routing"
	"tcr/internal/sim"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// BenchmarkFigure1ParetoCurve regenerates Figure 1's optimal tradeoff curve
// (worst-case throughput vs locality) on a 4-ary 2-cube.
func BenchmarkFigure1ParetoCurve(b *testing.B) {
	t := NewTorus(4)
	hs := []float64{1.0, 1.25, 1.5, 1.75, 2.0}
	for i := 0; i < b.N; i++ {
		if _, err := WorstCaseParetoCurve(t, hs, DesignOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1AlgorithmPoints evaluates every closed-form algorithm's
// Figure 1 point (locality, exact worst-case throughput) at full scale k=8.
func BenchmarkFigure1AlgorithmPoints(b *testing.B) {
	t := NewTorus(8)
	algs := []Algorithm{DOR(), ROMM(), RLB(), RLBth(), VAL(), IVAL()}
	for i := 0; i < b.N; i++ {
		for _, alg := range algs {
			if _, err := Report(t, alg, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure4RadixSweep regenerates Figure 4's locality-vs-radix series
// (optimal, IVAL, 2TURN) for k = 3..4 (larger radices belong to the CLI,
// where minutes-long LP solves are acceptable).
func BenchmarkFigure4RadixSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for k := 3; k <= 4; k++ {
			t := NewTorus(k)
			if _, err := OptimalLocalityAtMaxWorstCase(t, DesignOptions{}); err != nil {
				b.Fatalf("k=%d: %v", k, err)
			}
			if _, err := Report(t, IVAL(), nil); err != nil {
				b.Fatalf("k=%d IVAL: %v", k, err)
			}
			if _, err := Design2Turn(t, DesignOptions{}); err != nil {
				b.Fatalf("k=%d 2TURN: %v", k, err)
			}
		}
	}
}

// BenchmarkFigure5Interpolation regenerates Figure 5's interpolated-routing
// curve (DOR <-> IVAL) with exact worst-case evaluation per point, k=6.
func BenchmarkFigure5Interpolation(b *testing.B) {
	t := NewTorus(6)
	for i := 0; i < b.N; i++ {
		for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
			if _, err := Report(t, Interpolate(IVAL(), DOR(), alpha), nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure6AvgCase regenerates Figure 6's average-case tradeoff curve
// on a 4-ary 2-cube with a reduced sample.
func BenchmarkFigure6AvgCase(b *testing.B) {
	t := NewTorus(4)
	samples := SampleTraffic(t, 10, 1)
	hs := []float64{1.0, 1.5, 2.0}
	for i := 0; i < b.N; i++ {
		if _, err := AvgCaseParetoCurve(t, samples, hs, DesignOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesign2Turn measures the two-stage 2TURN construction (k=4).
func BenchmarkDesign2Turn(b *testing.B) {
	t := NewTorus(4)
	for i := 0; i < b.N; i++ {
		if _, err := Design2Turn(t, DesignOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesign2TurnA measures the 2TURNA construction (Section 5.4) on a
// reduced sample, k=4.
func BenchmarkDesign2TurnA(b *testing.B) {
	t := NewTorus(4)
	samples := SampleTraffic(t, 8, 3)
	for i := 0; i < b.N; i++ {
		if _, err := Design2TurnA(t, samples, DesignOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAvgApproximation measures Section 3.3's approximation-quality
// computation: exact sampled mean throughput vs the arithmetic-mean-load
// reciprocal, k=6 with 20 samples.
func BenchmarkAvgApproximation(b *testing.B) {
	t := NewTorus(6)
	samples := SampleTraffic(t, 20, 5)
	f := Evaluate(t, IVAL())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.AvgCase(samples)
	}
}

// BenchmarkFullWorstCaseLP measures the appendix's pre-dualization LP with
// every permutation constraint explicit (k=2 ground truth).
func BenchmarkFullWorstCaseLP(b *testing.B) {
	t := topo.NewTorus(2)
	for i := 0; i < b.N; i++ {
		if _, err := design.FullWorstCaseLP(t, design.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorstCaseOracle measures the exact worst-case evaluator (pair
// load matrices + Hungarian over channel representatives) at k=8.
func BenchmarkWorstCaseOracle(b *testing.B) {
	t := NewTorus(8)
	f := Evaluate(t, IVAL())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.WorstCase()
	}
}

// BenchmarkSimulator measures flit-level simulation throughput (cycles of an
// 8-ary 2-cube under IVAL at moderate load).
func BenchmarkSimulator(b *testing.B) {
	s, err := sim.New(sim.Config{K: 8, Rate: 0.5, Seed: 1, Alg: routing.IVAL{}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(100)
	}
}

// BenchmarkAblationCutsPermutations compares the pure permutation-cut
// strategy against the default potential formulation (see
// BenchmarkAblationCutsPotentials) on the same k=3 worst-case problem.
func BenchmarkAblationCutsPermutations(b *testing.B) {
	t := topo.NewTorus(3)
	for i := 0; i < b.N; i++ {
		if _, err := design.WorstCaseOptimal(t, design.Options{Cuts: design.CutPermutations}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCutsPotentials is the potentials side of the ablation.
func BenchmarkAblationCutsPotentials(b *testing.B) {
	t := topo.NewTorus(3)
	for i := 0; i < b.N; i++ {
		if _, err := design.WorstCaseOptimal(t, design.Options{Cuts: design.CutPotentials}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFoldOctant vs BenchmarkAblationFoldTranslation compare
// the two symmetry reductions of Section 4 on the same k=4 problem.
func BenchmarkAblationFoldOctant(b *testing.B) {
	t := topo.NewTorus(4)
	for i := 0; i < b.N; i++ {
		if _, err := design.WorstCaseOptimal(t, design.Options{Fold: design.FoldOctant}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFoldTranslation is the translation-only side.
func BenchmarkAblationFoldTranslation(b *testing.B) {
	t := topo.NewTorus(4)
	for i := 0; i < b.N; i++ {
		if _, err := design.WorstCaseOptimal(t, design.Options{Fold: design.FoldTranslation}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChannelLoads measures the core load computation gamma_c(R,Lambda)
// over all channels at k=8.
func BenchmarkChannelLoads(b *testing.B) {
	t := NewTorus(8)
	f := Evaluate(t, VAL())
	lam := traffic.Tornado(t)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.ChannelLoads(lam)
	}
}

// BenchmarkFlowFromAlgorithm measures path enumeration + flow accumulation
// for the heaviest closed-form algorithm (IVAL) at k=8.
func BenchmarkFlowFromAlgorithm(b *testing.B) {
	t := NewTorus(8)
	for i := 0; i < b.N; i++ {
		_ = eval.FromAlgorithm(t, routing.IVAL{})
	}
}

// BenchmarkEvaluateWorkers measures the facade's flow evaluation (path
// enumeration + per-pair accumulation, IVAL at k=8) across worker-pool
// widths. Sharding is per source-destination pair with disjoint output rows,
// so multi-core hosts scale it near-linearly; on a single-CPU host the
// widths tie (the README's Performance section records the measured
// numbers).
func BenchmarkEvaluateWorkers(b *testing.B) {
	t := NewTorus(8)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.FromAlgorithmCtx(context.Background(), t, routing.IVAL{}, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorstCaseWorkers measures the exact worst-case oracle (Hungarian
// matchings over channel representatives, k=8) across worker-pool widths;
// the four channel directions solve concurrently.
func BenchmarkWorstCaseWorkers(b *testing.B) {
	t := NewTorus(8)
	f := Evaluate(t, IVAL())
	b.ResetTimer()
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := f.WorstCaseCtx(context.Background(), w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParetoCurveWorkers measures the locality-bound design sweep
// across worker-pool widths. Workers=1 runs the legacy shared warm-started
// LP; workers>1 solves each locality point as an independent LP in parallel.
// k=4 keeps one iteration in seconds — the k=8 sweep needs hours per point
// on this pure-Go simplex (see EXPERIMENTS.md) and belongs to the CLI.
func BenchmarkParetoCurveWorkers(b *testing.B) {
	t := NewTorus(4)
	hs := []float64{1.0, 1.5, 2.0}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := WorstCaseParetoCurve(t, hs, DesignOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
