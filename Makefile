GO ?= go

.PHONY: build test race lint chaos chaos-store online fuzz bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short -timeout 30m ./...

lint:
	$(GO) run ./cmd/tcrlint -tests ./...

# chaos exercises the numerical-resilience layer under seeded fault
# injection (the lpchaos build tag compiles the injection hooks in).
chaos:
	$(GO) test -tags lpchaos -timeout 10m ./internal/...

# chaos-store runs the storage fault-injection and crash-consistency
# harness (seeded EIO/ENOSPC/short-write/lying-fsync faults plus a crash at
# every filesystem operation of the commit protocol), race-enabled.
chaos-store:
	$(GO) test -race -count=1 -tags "storechaos lpchaos" -timeout 10m ./internal/store ./internal/serve

# online runs the online-design-loop suite: observe ingestion, the
# drift-and-retune e2e, restart resume, and the re-solve-failure chaos case.
online:
	$(GO) test -race -count=1 -run 'Online|Observe' -timeout 10m ./internal/serve ./internal/online
	$(GO) test -tags lpchaos -count=1 -run 'OnlineResolveFailureChaos' -timeout 10m ./internal/serve

fuzz:
	$(GO) test ./internal/lp -run='^$$' -fuzz=FuzzReadMPS -fuzztime=5s
	$(GO) test ./internal/matching -run='^$$' -fuzz=FuzzHungarian -fuzztime=5s
	$(GO) test -tags lpchaos ./internal/lp -run='^$$' -fuzz=FuzzRecoveryLadder -fuzztime=5s
	$(GO) test ./internal/store -run='^$$' -fuzz=FuzzStoreManifest -fuzztime=5s

# bench records the LP-engine benchmark suite into BENCH_lp.json.
bench:
	sh scripts/bench.sh

# ci is the full verification gate: build, vet, the repo's own static
# analyzer, race-enabled tests, a bench smoke, and a short fuzz smoke.
ci:
	sh scripts/check.sh
