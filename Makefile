GO ?= go

.PHONY: build test race lint fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short -timeout 30m ./...

lint:
	$(GO) run ./cmd/tcrlint ./...

fuzz:
	$(GO) test ./internal/lp -run='^$$' -fuzz=FuzzReadMPS -fuzztime=5s
	$(GO) test ./internal/matching -run='^$$' -fuzz=FuzzHungarian -fuzztime=5s

# ci is the full verification gate: build, vet, the repo's own static
# analyzer, race-enabled tests, and a short fuzz smoke.
ci:
	sh scripts/check.sh
