GO ?= go

.PHONY: build test race lint chaos fuzz bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short -timeout 30m ./...

lint:
	$(GO) run ./cmd/tcrlint -tests ./...

# chaos exercises the numerical-resilience layer under seeded fault
# injection (the lpchaos build tag compiles the injection hooks in).
chaos:
	$(GO) test -tags lpchaos -timeout 10m ./internal/...

fuzz:
	$(GO) test ./internal/lp -run='^$$' -fuzz=FuzzReadMPS -fuzztime=5s
	$(GO) test ./internal/matching -run='^$$' -fuzz=FuzzHungarian -fuzztime=5s
	$(GO) test -tags lpchaos ./internal/lp -run='^$$' -fuzz=FuzzRecoveryLadder -fuzztime=5s
	$(GO) test ./internal/store -run='^$$' -fuzz=FuzzStoreManifest -fuzztime=5s

# bench records the LP-engine benchmark suite into BENCH_lp.json.
bench:
	sh scripts/bench.sh

# ci is the full verification gate: build, vet, the repo's own static
# analyzer, race-enabled tests, a bench smoke, and a short fuzz smoke.
ci:
	sh scripts/check.sh
