package tcr

import (
	"context"
	"math"
	"reflect"
	"testing"

	"tcr/internal/eval"
)

// The parallel engine's contract is bit-for-bit determinism: every worker
// count must produce the same Flow tables, the same worst-case certificate,
// and (on the per-point parallel path) the same Pareto points. These tests
// pin that contract on k=4 and k=6; `make race` runs them under the race
// detector.

func flowWithWorkers(t *testing.T, tor *Torus, alg Algorithm, workers int) *Flow {
	t.Helper()
	f, err := eval.FromAlgorithmCtx(context.Background(), tor, alg, workers)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParallelFlowDeterminism(t *testing.T) {
	ctx := context.Background()
	for _, k := range []int{4, 6} {
		tor := NewTorus(k)
		for _, alg := range []Algorithm{DOR(), IVAL()} {
			base := flowWithWorkers(t, tor, alg, 1)
			g1, p1, err := base.WorstCaseCtx(ctx, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 4, 8} {
				got := flowWithWorkers(t, tor, alg, w)
				if !reflect.DeepEqual(base.X, got.X) {
					t.Fatalf("k=%d %s: flow table differs between workers=1 and workers=%d", k, alg.Name(), w)
				}
				gw, pw, err := got.WorstCaseCtx(ctx, w)
				if err != nil {
					t.Fatal(err)
				}
				if gw != g1 {
					t.Fatalf("k=%d %s workers=%d: gamma_wc=%v, want the sequential %v bit-for-bit",
						k, alg.Name(), w, gw, g1)
				}
				if !reflect.DeepEqual(pw, p1) {
					t.Fatalf("k=%d %s workers=%d: adversarial permutation differs from sequential", k, alg.Name(), w)
				}
			}
		}
	}
}

// TestParallelConcurrencyKnob pins the facade knob: tcr.Concurrency feeds
// every entry point, and a cached Report at any width equals a fresh
// sequential one.
func TestParallelConcurrencyKnob(t *testing.T) {
	tor := NewTorus(4)
	saved := Concurrency
	defer func() { Concurrency = saved }()

	Concurrency = 1
	seq := mustReport(t, tor, IVAL(), nil)
	Concurrency = 4
	par := mustReport(t, tor, IVAL(), nil)
	if seq != par {
		t.Fatalf("Report differs across Concurrency settings:\nseq %+v\npar %+v", seq, par)
	}
}

func paretoWithWorkers(t *testing.T, tor *Torus, hs []float64, workers int) []ParetoPoint {
	t.Helper()
	pts, err := WorstCaseParetoCurve(tor, hs, DesignOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(hs) {
		t.Fatalf("workers=%d: %d points for %d locality bounds", workers, len(pts), len(hs))
	}
	for i, p := range pts {
		if p.HNorm != hs[i] {
			t.Fatalf("workers=%d: point %d out of order: HNorm=%v, want %v", workers, i, p.HNorm, hs[i])
		}
	}
	return pts
}

func TestParallelParetoDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("three LP sweeps; skipped in -short")
	}
	tor := NewTorus(4)
	hs := []float64{1.0, 1.5, 2.0}

	seq := paretoWithWorkers(t, tor, hs, 1)
	par2 := paretoWithWorkers(t, tor, hs, 2)
	par4 := paretoWithWorkers(t, tor, hs, 4)

	for i := range hs {
		// Any pool width >= 2 solves each point by the same independent LP,
		// so the results are bit-identical regardless of scheduling.
		if par2[i].Theta != par4[i].Theta {
			t.Fatalf("point %d: workers=2 theta %v != workers=4 theta %v", i, par2[i].Theta, par4[i].Theta)
		}
		// The sequential sweep shares one warm-started LP across points, so
		// it agrees with the per-point path only to LP tolerance.
		if d := math.Abs(seq[i].Theta - par2[i].Theta); d > 1e-6 {
			t.Fatalf("point %d: sequential theta %v vs parallel %v (|d|=%g > 1e-6)",
				i, seq[i].Theta, par2[i].Theta, d)
		}
	}
}
