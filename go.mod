module tcr

go 1.22
