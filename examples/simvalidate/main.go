// Simulator validation: Section 2.1 argues the edge-congestion model is an
// upper bound that practical routers approach (60-75% cited). This example
// runs the flit-level simulator against the analytic ideal for DOR and IVAL
// under uniform and tornado traffic on an 8-ary 2-cube, printing accepted
// throughput as a fraction of the analytic saturation point.
package main

import (
	"context"
	"fmt"
	"os"

	"tcr"
)

func main() {
	t := tcr.NewTorus(8)
	cases := []struct {
		alg     tcr.Algorithm
		pattern *tcr.Traffic
		name    string
	}{
		{tcr.DOR(), nil, "DOR/uniform"},
		{tcr.IVAL(), nil, "IVAL/uniform"},
		{tcr.DOR(), tcr.TornadoTraffic(t), "DOR/tornado"},
		{tcr.IVAL(), tcr.TornadoTraffic(t), "IVAL/tornado"},
	}
	fmt.Println("case           ideal_sat  simulated  fraction")
	for _, c := range cases {
		f := tcr.Evaluate(t, c.alg)
		pat := c.pattern
		if pat == nil {
			pat = tcr.UniformTraffic(t)
		}
		ideal := f.Throughput(pat)
		if ideal > 1 {
			ideal = 1 // injection bandwidth binds first
		}
		st, err := tcr.SimulateCtx(context.Background(), tcr.SimConfig{
			K: 8, Rate: 1.0, Seed: 7, Alg: c.alg, Pattern: c.pattern,
			VCsPerClass: 3, BufDepth: 8,
			Warmup: 3000, Measure: 10000,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-14s %9.3f  %9.3f  %7.1f%%  deadlock=%v\n",
			c.name, ideal, st.Throughput, 100*st.Throughput/ideal, st.Deadlocked)
	}
	fmt.Println("\nfractions in the 50-85% band reproduce the paper's practical-router gap")
}
