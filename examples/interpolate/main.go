// Interpolated routing (Section 5.3): mixing DOR and IVAL with probability
// alpha trades locality against worst-case throughput along a smooth curve;
// locality interpolates exactly linearly (equation 12) and the worst case
// follows the harmonic-mean bound (equation 14) with equality, because DOR
// and IVAL share a worst-case permutation.
package main

import (
	"fmt"
	"log"

	"tcr"
)

func main() {
	t := tcr.NewTorus(8)
	dor, err := tcr.Report(t, tcr.DOR(), nil)
	if err != nil {
		log.Fatal(err)
	}
	ival, err := tcr.Report(t, tcr.IVAL(), nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("alpha   locality  worst-case  harmonic-mean bound")
	for _, alpha := range []float64{0, 0.25, 0.5, 0.65, 0.75, 1} {
		m, err := tcr.Report(t, tcr.Interpolate(tcr.IVAL(), tcr.DOR(), alpha), nil)
		if err != nil {
			log.Fatal(err)
		}
		bound := 1 / (alpha/ival.WorstCaseFraction + (1-alpha)/dor.WorstCaseFraction)
		fmt.Printf("%5.2f   %8.4f  %10.4f  %19.4f\n",
			alpha, m.HNorm, m.WorstCaseFraction, bound)
	}
	fmt.Println("\nworst-case equals the bound: DOR and IVAL share a worst-case permutation")
	fmt.Println("(footnote 5 of the paper)")
}
