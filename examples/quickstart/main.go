// Quickstart: evaluate the paper's routing algorithms on an 8-ary 2-cube
// and reproduce the headline comparison of Section 5.2 — VAL pays double
// the minimal path length for optimal worst-case throughput, IVAL recovers
// ~19% of that locality for free, and loop removal (Figure 3) is why.
package main

import (
	"fmt"
	"log"

	"tcr"
)

func main() {
	t := tcr.NewTorus(8)
	fmt.Printf("8-ary 2-cube: N=%d nodes, C=%d channels, capacity %.2f\n\n",
		t.N, t.C, tcr.NetworkCapacity(t))

	fmt.Println("algorithm  locality(x minimal)  worst-case (fraction of capacity)")
	for _, alg := range []tcr.Algorithm{tcr.DOR(), tcr.VAL(), tcr.IVAL()} {
		m, err := tcr.Report(t, alg, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s  %19.3f  %33.3f\n", alg.Name(), m.HNorm, m.WorstCaseFraction)
	}

	// Report memoizes flow tables, so re-reporting VAL and IVAL here reuses
	// the evaluations from the loop above.
	val, err := tcr.Report(t, tcr.VAL(), nil)
	if err != nil {
		log.Fatal(err)
	}
	ival, err := tcr.Report(t, tcr.IVAL(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIVAL keeps VAL's worst case while cutting average path length by %.1f%%\n",
		100*(val.HAvg-ival.HAvg)/val.HAvg)
	fmt.Println("(the paper reports 19.3% on the 8-ary 2-cube)")
}
