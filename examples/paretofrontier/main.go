// Pareto frontier: solve the locality-constrained worst-case design LPs of
// Section 5.1 on a 4-ary 2-cube (small enough to finish in about a minute), then
// design 2TURN over the two-turn path space and confirm it sits on the
// frontier's maximum-throughput end — the k=4 case where Figure 4 shows
// 2TURN matching the optimal exactly.
package main

import (
	"fmt"
	"log"

	"tcr"
)

func main() {
	t := tcr.NewTorus(4)

	hs := []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
	pts, err := tcr.WorstCaseParetoCurve(t, hs, tcr.DesignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal tradeoff on the 4-ary 2-cube (throughput as fraction of capacity):")
	fmt.Println("locality<=L   best worst-case throughput")
	for _, p := range pts {
		fmt.Printf("%11.2f   %26.4f\n", p.HNorm, p.Theta)
	}

	tt, err := tcr.Design2Turn(t, tcr.DesignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	m, err := tcr.Report(t, tt.Table, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2TURN (LP-weighted two-turn paths): locality %.4f, worst case %.4f of capacity\n",
		m.HNorm, m.WorstCaseFraction)

	opt, err := tcr.OptimalLocalityAtMaxWorstCase(t, tcr.DesignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unrestricted optimal at max worst case: locality %.4f\n", opt.HNorm)
	fmt.Printf("gap: %.2f%% (the paper's Figure 4 shows 2TURN matching exactly at k=4)\n",
		100*(m.HNorm-opt.HNorm)/opt.HNorm)
}
