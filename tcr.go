// Package tcr reproduces "Throughput-Centric Routing Algorithm Design"
// (Towles, Dally, Boyd; SPAA 2003): linear-programming design of randomized
// oblivious routing algorithms for k-ary 2-cube (torus) networks, optimizing
// worst-case and average-case throughput, together with the paper's concrete
// algorithms (DOR, VAL, IVAL, ROMM, RLB, RLBth, 2TURN, 2TURNA, interpolated
// routing), an exact worst-case evaluator, and a flit-level network
// simulator for validating the analytical model.
//
// The package is a facade over the implementation packages:
//
//   - internal/lp        a from-scratch revised-simplex LP solver
//   - internal/matching  Hungarian assignment (the worst-case oracle)
//   - internal/topo      torus topology and its automorphism group
//   - internal/traffic   traffic matrices and Birkhoff decomposition
//   - internal/paths     path enumeration and loop removal
//   - internal/routing   the routing algorithms
//   - internal/eval      throughput/locality metrics
//   - internal/design    the LP design problems (capacity, worst case,
//     average case, 2TURN/2TURNA, Pareto sweeps)
//   - internal/sim       flit-level VC-router simulator
//
// Quick start:
//
//	t := tcr.NewTorus(8)
//	m := tcr.Report(t, tcr.IVAL(), nil)
//	fmt.Printf("IVAL: H=%.3fx minimal, worst case %.1f%% of capacity\n",
//		m.HNorm, 100*m.WorstCaseFraction)
package tcr

import (
	"tcr/internal/design"
	"tcr/internal/eval"
	"tcr/internal/routing"
	"tcr/internal/sim"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// Torus is a k-ary 2-cube topology (see internal/topo).
type Torus = topo.Torus

// NewTorus constructs a k-ary 2-cube.
func NewTorus(k int) *Torus { return topo.NewTorus(k) }

// Algorithm is a randomized oblivious routing algorithm: a probability
// distribution over paths for every source-destination pair.
type Algorithm = routing.Algorithm

// DOR returns dimension-order routing (x first), Table 1.
func DOR() Algorithm { return routing.DOR{} }

// VAL returns Valiant's randomized algorithm, Table 1.
func VAL() Algorithm { return routing.VAL{} }

// IVAL returns the paper's improved Valiant algorithm (Section 5.2).
func IVAL() Algorithm { return routing.IVAL{} }

// ROMM returns two-phase randomized minimal routing, Table 1.
func ROMM() Algorithm { return routing.ROMM{} }

// RLB returns randomized local balance, Table 1.
func RLB() Algorithm { return routing.RLB{} }

// RLBth returns the thresholded RLB variant, Table 1.
func RLBth() Algorithm { return routing.RLB{Threshold: true} }

// O1TURN returns minimal routing with random dimension order (a post-paper
// algorithm included as an extra minimal baseline).
func O1TURN() Algorithm { return routing.O1TURN{} }

// GOALish returns the oblivious GOAL-style quadrant-staircase algorithm
// used for the Section 5.5 adaptive-routing comparison.
func GOALish() Algorithm { return routing.GOALish{} }

// Interpolate mixes two algorithms: route with a with probability alpha,
// otherwise with b (Section 5.3).
func Interpolate(a, b Algorithm, alpha float64) Algorithm {
	return routing.Interpolated{A: a, B: b, Alpha: alpha}
}

// Flow is the channel-load fingerprint of an algorithm, from which all
// throughput metrics derive.
type Flow = eval.Flow

// Evaluate computes an algorithm's flow table on a torus.
func Evaluate(t *Torus, alg Algorithm) *Flow { return eval.FromAlgorithm(t, alg) }

// NetworkCapacity returns the torus's ideal uniform-traffic throughput, the
// normalizer for all throughput fractions.
func NetworkCapacity(t *Torus) float64 { return eval.NetworkCapacity(t) }

// Traffic is a (doubly-stochastic) traffic pattern.
type Traffic = traffic.Matrix

// UniformTraffic, TornadoTraffic and TransposeTraffic are standard patterns.
func UniformTraffic(t *Torus) *Traffic   { return traffic.Uniform(t.N) }
func TornadoTraffic(t *Torus) *Traffic   { return traffic.Tornado(t) }
func TransposeTraffic(t *Torus) *Traffic { return traffic.Transpose(t) }

// SampleTraffic draws count random doubly-stochastic matrices (the set X of
// the average-case cost function) with a fixed seed.
func SampleTraffic(t *Torus, count int, seed int64) []*Traffic {
	return traffic.Sample(t.N, count, seed)
}

// Metrics summarizes an algorithm on a topology in the paper's units.
type Metrics struct {
	// HAvg is the average path length in hops over all pairs; HNorm is
	// normalized to the mean minimal path length (1.0 = minimal).
	HAvg, HNorm float64
	// Capacity is this algorithm's uniform-traffic throughput as an
	// injection fraction; CapacityFraction normalizes by the network's
	// ideal capacity.
	Capacity, CapacityFraction float64
	// GammaWC is the exact worst-case channel load; WorstCaseFraction is
	// the worst-case throughput as a fraction of network capacity (the
	// horizontal axis of Figure 1).
	GammaWC, WorstCaseFraction float64
	// AvgCaseFraction is the approximate average-case throughput as a
	// fraction of capacity (Figure 6's axis); zero when no sample given.
	AvgCaseFraction float64
}

// Report evaluates the paper's metrics for an algorithm; samples may be nil
// to skip the average case.
func Report(t *Torus, alg Algorithm, samples []*Traffic) Metrics {
	f := Evaluate(t, alg)
	cap := NetworkCapacity(t)
	gw, _ := f.WorstCase()
	m := Metrics{
		HAvg:              f.HAvg(),
		HNorm:             f.HNorm(),
		Capacity:          f.Capacity(),
		CapacityFraction:  f.Capacity() / cap,
		GammaWC:           gw,
		WorstCaseFraction: (1 / gw) / cap,
	}
	if len(samples) > 0 {
		m.AvgCaseFraction = f.AvgCase(samples).ApproxThroughput / cap
	}
	return m
}

// DesignOptions tunes the LP-based designers; the zero value is sensible.
type DesignOptions = design.Options

// ParetoPoint is one sample of an optimal tradeoff curve.
type ParetoPoint = design.ParetoPoint

// DesignResult is the outcome of a flow-based design problem.
type DesignResult = design.Result

// PathDesignResult is the outcome of a path-based design (2TURN, 2TURNA),
// including an executable routing table.
type PathDesignResult = design.PathResult

// WorstCaseOptimal designs the maximum-worst-case-throughput routing
// function (the right end of Figure 1's Pareto curve).
func WorstCaseOptimal(t *Torus, opts DesignOptions) (*DesignResult, error) {
	return design.WorstCaseOptimal(t, opts)
}

// WorstCaseParetoCurve computes Figure 1's optimal tradeoff curve: best
// worst-case throughput at each normalized locality bound.
func WorstCaseParetoCurve(t *Torus, hNorms []float64, opts DesignOptions) ([]ParetoPoint, error) {
	return design.WorstCaseParetoCurve(t, hNorms, opts)
}

// designSlack is the stage-2 slack on the optimal worst-case load used by
// the lexicographic (throughput-then-locality) designs exposed here.
const designSlack = 1e-6

// OptimalLocalityAtMaxWorstCase finds the best locality achievable at
// maximum worst-case throughput (Figure 4's "optimal" series).
func OptimalLocalityAtMaxWorstCase(t *Torus, opts DesignOptions) (*DesignResult, error) {
	return design.MinLocalityAtWorstCase(t, designSlack, opts)
}

// Design2Turn constructs the 2TURN algorithm (Section 5.2).
func Design2Turn(t *Torus, opts DesignOptions) (*PathDesignResult, error) {
	return design.DesignTwoTurn(t, designSlack, opts)
}

// Design2TurnA constructs the 2TURNA algorithm (Section 5.4) over a traffic
// sample.
func Design2TurnA(t *Torus, samples []*Traffic, opts DesignOptions) (*PathDesignResult, error) {
	return design.DesignTwoTurnAvg(t, samples, designSlack, opts)
}

// AvgCaseOptimal designs for maximum (approximate) average-case throughput
// over the sample.
func AvgCaseOptimal(t *Torus, samples []*Traffic, opts DesignOptions) (*DesignResult, error) {
	return design.AvgCaseOptimal(t, samples, opts)
}

// AvgCaseParetoCurve computes Figure 6's optimal tradeoff curve.
func AvgCaseParetoCurve(t *Torus, samples []*Traffic, hNorms []float64, opts DesignOptions) ([]ParetoPoint, error) {
	return design.AvgCaseParetoCurve(t, samples, hNorms, opts)
}

// TableFromFlow recovers an executable routing algorithm from a designed
// flow table by path decomposition.
func TableFromFlow(f *Flow, label string) (Algorithm, error) {
	return design.DecomposeFlow(f, label)
}

// SimConfig parameterizes the flit-level simulator.
type SimConfig = sim.Config

// SimStats is a simulation measurement.
type SimStats = sim.Stats

// Simulate runs warmup then a measurement window and returns the stats.
func Simulate(cfg SimConfig, warmup, measure int) (SimStats, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return SimStats{}, err
	}
	s.Run(warmup)
	s.StartMeasurement()
	s.Run(measure)
	return s.Stats(), nil
}

// SaturationResult is a simulated load sweep's outcome.
type SaturationResult = sim.SaturationResult

// FindSaturation sweeps offered load and reports the accepted-throughput
// plateau (the simulated saturation point).
func FindSaturation(cfg SimConfig, rates []float64, warmup, measure int) (SaturationResult, error) {
	return sim.FindSaturation(cfg, rates, warmup, measure)
}
