// Package tcr reproduces "Throughput-Centric Routing Algorithm Design"
// (Towles, Dally, Boyd; SPAA 2003): linear-programming design of randomized
// oblivious routing algorithms for k-ary 2-cube (torus) networks, optimizing
// worst-case and average-case throughput, together with the paper's concrete
// algorithms (DOR, VAL, IVAL, ROMM, RLB, RLBth, 2TURN, 2TURNA, interpolated
// routing), an exact worst-case evaluator, and a flit-level network
// simulator for validating the analytical model.
//
// The package is a facade over the implementation packages:
//
//   - internal/lp        a from-scratch revised-simplex LP solver
//   - internal/matching  Hungarian assignment (the worst-case oracle)
//   - internal/topo      torus topology and its automorphism group
//   - internal/traffic   traffic matrices and Birkhoff decomposition
//   - internal/paths     path enumeration and loop removal
//   - internal/routing   the routing algorithms
//   - internal/eval      throughput/locality metrics
//   - internal/design    the LP design problems (capacity, worst case,
//     average case, 2TURN/2TURNA, Pareto sweeps)
//   - internal/sim       flit-level VC-router simulator
//
// Quick start:
//
//	t := tcr.NewTorus(8)
//	m, err := tcr.Report(t, tcr.IVAL(), nil)
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Printf("IVAL: H=%.3fx minimal, worst case %.1f%% of capacity\n",
//		m.HNorm, 100*m.WorstCaseFraction)
package tcr

import (
	"context"

	"tcr/internal/design"
	"tcr/internal/eval"
	"tcr/internal/routing"
	"tcr/internal/sim"
	"tcr/internal/topo"
	"tcr/internal/traffic"
)

// Concurrency bounds the parallelism of the evaluation entry points
// (Evaluate, Report and their Ctx forms): 0 (the default) uses all cores
// (GOMAXPROCS); 1 reproduces the sequential engine bit for bit; any other
// value caps the worker count. The design entry points take the equivalent
// DesignOptions.Workers field instead, and the simulator takes
// SimConfig.Workers. Concurrency is read when a call starts and is not
// synchronized: set it during initialization, before issuing work.
var Concurrency int

// Torus is a k-ary 2-cube topology (see internal/topo).
type Torus = topo.Torus

// NewTorus constructs a k-ary 2-cube.
func NewTorus(k int) *Torus { return topo.NewTorus(k) }

// Topology is the network abstraction the design and simulation layers
// consume: any registered family (2D/3D tori, meshes) exposing port
// arithmetic, distances, and its automorphism group (see internal/topo).
// *Torus satisfies it.
type Topology = topo.Topology

// ParseTopology resolves a "family:spec" string — "torus2d:8", "torus3d:4",
// "mesh:8x8" — through the topology family registry.
func ParseTopology(s string) (Topology, error) { return topo.Parse(s) }

// Algorithm is a randomized oblivious routing algorithm: a probability
// distribution over paths for every source-destination pair.
type Algorithm = routing.Algorithm

// DOR returns dimension-order routing (x first), Table 1.
func DOR() Algorithm { return routing.DOR{} }

// VAL returns Valiant's randomized algorithm, Table 1.
func VAL() Algorithm { return routing.VAL{} }

// IVAL returns the paper's improved Valiant algorithm (Section 5.2).
func IVAL() Algorithm { return routing.IVAL{} }

// ROMM returns two-phase randomized minimal routing, Table 1.
func ROMM() Algorithm { return routing.ROMM{} }

// RLB returns randomized local balance, Table 1.
func RLB() Algorithm { return routing.RLB{} }

// RLBth returns the thresholded RLB variant, Table 1.
func RLBth() Algorithm { return routing.RLB{Threshold: true} }

// O1TURN returns minimal routing with random dimension order (a post-paper
// algorithm included as an extra minimal baseline).
func O1TURN() Algorithm { return routing.O1TURN{} }

// GOALish returns the oblivious GOAL-style quadrant-staircase algorithm
// used for the Section 5.5 adaptive-routing comparison.
func GOALish() Algorithm { return routing.GOALish{} }

// Interpolate mixes two algorithms: route with a with probability alpha,
// otherwise with b (Section 5.3).
func Interpolate(a, b Algorithm, alpha float64) Algorithm {
	return routing.Interpolated{A: a, B: b, Alpha: alpha}
}

// Flow is the channel-load fingerprint of an algorithm, from which all
// throughput metrics derive.
type Flow = eval.Flow

// Evaluate computes an algorithm's flow table on a torus, on Concurrency
// workers.
func Evaluate(t *Torus, alg Algorithm) *Flow {
	f, err := EvaluateCtx(context.Background(), t, alg)
	if err != nil {
		// Unreachable: path enumeration cannot fail, and the background
		// context is never cancelled.
		panic(err)
	}
	return f
}

// EvaluateCtx is Evaluate under a cancellation context: the per-pair
// enumeration aborts early once ctx is done.
func EvaluateCtx(ctx context.Context, t *Torus, alg Algorithm) (*Flow, error) {
	return eval.FromAlgorithmCtx(ctx, t, alg, Concurrency)
}

// NetworkCapacity returns the torus's ideal uniform-traffic throughput, the
// normalizer for all throughput fractions.
func NetworkCapacity(t *Torus) float64 { return eval.NetworkCapacity(t) }

// Traffic is a (doubly-stochastic) traffic pattern.
type Traffic = traffic.Matrix

// UniformTraffic, TornadoTraffic and TransposeTraffic are standard patterns.
func UniformTraffic(t *Torus) *Traffic   { return traffic.Uniform(t.N) }
func TornadoTraffic(t *Torus) *Traffic   { return traffic.Tornado(t) }
func TransposeTraffic(t *Torus) *Traffic { return traffic.Transpose(t) }

// SampleTraffic draws count random doubly-stochastic matrices (the set X of
// the average-case cost function) with a fixed seed.
func SampleTraffic(t *Torus, count int, seed int64) []*Traffic {
	return traffic.Sample(t.N, count, seed)
}

// Metrics summarizes an algorithm on a topology in the paper's units.
type Metrics struct {
	// HAvg is the average path length in hops over all pairs; HNorm is
	// normalized to the mean minimal path length (1.0 = minimal).
	HAvg, HNorm float64
	// Capacity is this algorithm's uniform-traffic throughput as an
	// injection fraction; CapacityFraction normalizes by the network's
	// ideal capacity.
	Capacity, CapacityFraction float64
	// GammaWC is the exact worst-case channel load; WorstCaseFraction is
	// the worst-case throughput as a fraction of network capacity (the
	// horizontal axis of Figure 1).
	GammaWC, WorstCaseFraction float64
	// AvgCaseFraction is the approximate average-case throughput as a
	// fraction of capacity (Figure 6's axis); zero when no sample given.
	AvgCaseFraction float64
}

// flowCache memoizes flow tables across Report invocations: repeated
// reports on the same (radix, algorithm) — CLI subcommands, interpolation
// sweeps — reuse one path-enumeration pass. Designed routing tables have no
// stable identity and bypass it (see eval.FlowKey).
var flowCache = eval.NewCache()

// Report evaluates the paper's metrics for an algorithm; samples may be nil
// to skip the average case. Flow tables are memoized across calls, so
// re-reporting an algorithm (at a different sample set, say) is cheap.
func Report(t *Torus, alg Algorithm, samples []*Traffic) (Metrics, error) {
	return ReportCtx(context.Background(), t, alg, samples)
}

// ReportCtx is Report under a cancellation context, which bounds both the
// flow evaluation and the exact worst-case (Hungarian) computation.
func ReportCtx(ctx context.Context, t *Torus, alg Algorithm, samples []*Traffic) (Metrics, error) {
	f, err := flowCache.Evaluate(ctx, t, alg, Concurrency)
	if err != nil {
		return Metrics{}, err
	}
	cap := NetworkCapacity(t)
	gw, _, err := f.WorstCaseCtx(ctx, Concurrency)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{
		HAvg:              f.HAvg(),
		HNorm:             f.HNorm(),
		Capacity:          f.Capacity(),
		CapacityFraction:  f.Capacity() / cap,
		GammaWC:           gw,
		WorstCaseFraction: (1 / gw) / cap,
	}
	if len(samples) > 0 {
		ac, err := f.AvgCaseCtx(ctx, samples, Concurrency)
		if err != nil {
			return Metrics{}, err
		}
		m.AvgCaseFraction = ac.ApproxThroughput / cap
	}
	return m, nil
}

// DesignOptions tunes the LP-based designers; the zero value is sensible.
type DesignOptions = design.Options

// ParetoPoint is one sample of an optimal tradeoff curve.
type ParetoPoint = design.ParetoPoint

// DesignResult is the outcome of a flow-based design problem.
type DesignResult = design.Result

// PathDesignResult is the outcome of a path-based design (2TURN, 2TURNA),
// including an executable routing table.
type PathDesignResult = design.PathResult

// WorstCaseOptimal designs the maximum-worst-case-throughput routing
// function (the right end of Figure 1's Pareto curve).
func WorstCaseOptimal(t *Torus, opts DesignOptions) (*DesignResult, error) {
	return design.WorstCaseOptimal(t, opts)
}

// WorstCaseOptimalCtx is WorstCaseOptimal under a cancellation context.
func WorstCaseOptimalCtx(ctx context.Context, t *Torus, opts DesignOptions) (*DesignResult, error) {
	return design.WorstCaseOptimalCtx(ctx, t, opts)
}

// WorstCaseParetoCurve computes Figure 1's optimal tradeoff curve: best
// worst-case throughput at each normalized locality bound.
func WorstCaseParetoCurve(t *Torus, hNorms []float64, opts DesignOptions) ([]ParetoPoint, error) {
	return design.WorstCaseParetoCurve(t, hNorms, opts)
}

// WorstCaseParetoCurveCtx is WorstCaseParetoCurve under a cancellation
// context. With opts.Workers != 1 the curve's points solve as independent
// LPs in parallel, returned in hNorms order.
func WorstCaseParetoCurveCtx(ctx context.Context, t *Torus, hNorms []float64, opts DesignOptions) ([]ParetoPoint, error) {
	return design.WorstCaseParetoCurveCtx(ctx, t, hNorms, opts)
}

// OptimalLocalityAtMaxWorstCase finds the best locality achievable at
// maximum worst-case throughput (Figure 4's "optimal" series). The stage-2
// slack is opts.Slack (default 1e-6); before the DesignOptions.Slack field
// existed this facade hard-coded the same value as a private constant.
func OptimalLocalityAtMaxWorstCase(t *Torus, opts DesignOptions) (*DesignResult, error) {
	return design.MinLocalityAtWorstCase(t, opts)
}

// OptimalLocalityAtMaxWorstCaseCtx is OptimalLocalityAtMaxWorstCase under a
// cancellation context.
func OptimalLocalityAtMaxWorstCaseCtx(ctx context.Context, t *Torus, opts DesignOptions) (*DesignResult, error) {
	return design.MinLocalityAtWorstCaseCtx(ctx, t, opts)
}

// Design2Turn constructs the 2TURN algorithm (Section 5.2); the stage-2
// slack is opts.Slack.
func Design2Turn(t *Torus, opts DesignOptions) (*PathDesignResult, error) {
	return design.DesignTwoTurn(t, opts)
}

// Design2TurnCtx is Design2Turn under a cancellation context.
func Design2TurnCtx(ctx context.Context, t *Torus, opts DesignOptions) (*PathDesignResult, error) {
	return design.DesignTwoTurnCtx(ctx, t, opts)
}

// Design2TurnA constructs the 2TURNA algorithm (Section 5.4) over a traffic
// sample; the stage-2 slack is opts.Slack.
func Design2TurnA(t *Torus, samples []*Traffic, opts DesignOptions) (*PathDesignResult, error) {
	return design.DesignTwoTurnAvg(t, samples, opts)
}

// Design2TurnACtx is Design2TurnA under a cancellation context.
func Design2TurnACtx(ctx context.Context, t *Torus, samples []*Traffic, opts DesignOptions) (*PathDesignResult, error) {
	return design.DesignTwoTurnAvgCtx(ctx, t, samples, opts)
}

// AvgCaseOptimal designs for maximum (approximate) average-case throughput
// over the sample.
func AvgCaseOptimal(t *Torus, samples []*Traffic, opts DesignOptions) (*DesignResult, error) {
	return design.AvgCaseOptimal(t, samples, opts)
}

// AvgCaseOptimalCtx is AvgCaseOptimal under a cancellation context.
func AvgCaseOptimalCtx(ctx context.Context, t *Torus, samples []*Traffic, opts DesignOptions) (*DesignResult, error) {
	return design.AvgCaseOptimalCtx(ctx, t, samples, opts)
}

// AvgCaseParetoCurve computes Figure 6's optimal tradeoff curve.
func AvgCaseParetoCurve(t *Torus, samples []*Traffic, hNorms []float64, opts DesignOptions) ([]ParetoPoint, error) {
	return design.AvgCaseParetoCurve(t, samples, hNorms, opts)
}

// AvgCaseParetoCurveCtx is AvgCaseParetoCurve under a cancellation context,
// with the same per-point parallelism as WorstCaseParetoCurveCtx.
func AvgCaseParetoCurveCtx(ctx context.Context, t *Torus, samples []*Traffic, hNorms []float64, opts DesignOptions) ([]ParetoPoint, error) {
	return design.AvgCaseParetoCurveCtx(ctx, t, samples, hNorms, opts)
}

// TableFromFlow recovers an executable routing algorithm from a designed
// flow table by path decomposition.
func TableFromFlow(f *Flow, label string) (Algorithm, error) {
	return design.DecomposeFlow(f, label)
}

// SimConfig parameterizes the flit-level simulator.
type SimConfig = sim.Config

// SimStats is a simulation measurement.
type SimStats = sim.Stats

// SimulateCtx runs cfg's warmup window then its measurement window
// (SimConfig.Warmup and SimConfig.Measure; zero values select the
// simulator defaults) and returns the stats. The context is checked
// periodically during the run.
func SimulateCtx(ctx context.Context, cfg SimConfig) (SimStats, error) {
	return sim.Simulate(ctx, cfg)
}

// Simulate runs warmup then a measurement window and returns the stats.
//
// Deprecated: the window lengths moved into the configuration. Set
// SimConfig.Warmup and SimConfig.Measure and call SimulateCtx instead;
// this positional form remains as a thin wrapper.
func Simulate(cfg SimConfig, warmup, measure int) (SimStats, error) {
	cfg.Warmup, cfg.Measure = warmup, measure
	return SimulateCtx(context.Background(), cfg)
}

// SaturationResult is a simulated load sweep's outcome.
type SaturationResult = sim.SaturationResult

// FindSaturationCtx sweeps offered load and reports the accepted-throughput
// plateau (the simulated saturation point). Window lengths come from
// SimConfig.Warmup/Measure and the sweep runs its independent rate points
// on SimConfig.Workers goroutines; the result is identical for every
// worker count.
func FindSaturationCtx(ctx context.Context, cfg SimConfig, rates []float64) (SaturationResult, error) {
	return sim.FindSaturation(ctx, cfg, rates)
}

// FindSaturation sweeps offered load and reports the saturation plateau.
//
// Deprecated: the window lengths moved into the configuration. Set
// SimConfig.Warmup and SimConfig.Measure and call FindSaturationCtx
// instead; this positional form remains as a thin wrapper.
func FindSaturation(cfg SimConfig, rates []float64, warmup, measure int) (SaturationResult, error) {
	cfg.Warmup, cfg.Measure = warmup, measure
	return FindSaturationCtx(context.Background(), cfg, rates)
}
